(* Tests for grid geometry, bounding boxes, paths, occupancy, placement. *)

module Grid = Qec_lattice.Grid
module Bbox = Qec_lattice.Bbox
module Path = Qec_lattice.Path
module Occupancy = Qec_lattice.Occupancy
module Placement = Qec_lattice.Placement

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Grid                                                                 *)

let test_grid_sizes () =
  let g = Grid.create 4 in
  check_int "side" 4 (Grid.side g);
  check_int "cells" 16 (Grid.num_cells g);
  check_int "vertices" 25 (Grid.num_vertices g)

let test_grid_vertex_ids () =
  let g = Grid.create 3 in
  check_int "origin" 0 (Grid.vertex_id g ~x:0 ~y:0);
  check_int "last" 15 (Grid.vertex_id g ~x:3 ~y:3);
  Alcotest.(check (pair int int)) "roundtrip" (2, 1)
    (Grid.vertex_xy g (Grid.vertex_id g ~x:2 ~y:1))

let test_grid_cell_corners () =
  let g = Grid.create 3 in
  let c = Grid.cell_id g ~x:1 ~y:1 in
  Alcotest.(check (list int))
    "corners"
    [ Grid.vertex_id g ~x:1 ~y:1; Grid.vertex_id g ~x:2 ~y:1;
      Grid.vertex_id g ~x:1 ~y:2; Grid.vertex_id g ~x:2 ~y:2 ]
    (Array.to_list (Grid.cell_corners g c))

let test_grid_neighbors () =
  let g = Grid.create 2 in
  (* corner vertex has 2 neighbors, center has 4 *)
  check_int "corner" 2 (List.length (Grid.vertex_neighbors g 0));
  let center = Grid.vertex_id g ~x:1 ~y:1 in
  check_int "center" 4 (List.length (Grid.vertex_neighbors g center));
  (* neighbors are symmetric *)
  List.iter
    (fun v ->
      List.iter
        (fun nb ->
          check_bool "symmetric" true
            (List.mem v (Grid.vertex_neighbors g nb)))
        (Grid.vertex_neighbors g v))
    (List.init (Grid.num_vertices g) (fun i -> i))

let test_grid_distances () =
  let g = Grid.create 4 in
  let a = Grid.vertex_id g ~x:0 ~y:0 and b = Grid.vertex_id g ~x:3 ~y:2 in
  check_int "vertex manhattan" 5 (Grid.vertex_distance g a b);
  let ca = Grid.cell_id g ~x:0 ~y:0 and cb = Grid.cell_id g ~x:2 ~y:2 in
  check_int "cell manhattan" 4 (Grid.cell_distance g ca cb);
  (* corner-to-corner min distance is cell distance minus the spans *)
  check_int "corner distance" 2 (Grid.cell_to_cell_vertex_distance g ca cb);
  (* adjacent cells share corners: distance 0 *)
  let cc = Grid.cell_id g ~x:1 ~y:0 in
  check_int "adjacent" 0 (Grid.cell_to_cell_vertex_distance g ca cc)

let test_grid_bounds () =
  let g = Grid.create 2 in
  check_bool "vertex oob" true
    (match Grid.vertex_id g ~x:3 ~y:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "cell oob" true
    (match Grid.cell_id g ~x:2 ~y:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "create 0" true
    (match Grid.create 0 with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Bbox                                                                 *)

let test_bbox_construction () =
  let b = Bbox.of_cells (3, 1) (0, 2) in
  check_int "x0" 0 b.Bbox.x0;
  check_int "x1" 3 b.Bbox.x1;
  check_int "width" 4 (Bbox.width b);
  check_int "height" 2 (Bbox.height b);
  check_int "area" 8 (Bbox.area b)

let test_bbox_invalid () =
  check_bool "inverted" true
    (match Bbox.make ~x0:2 ~y0:0 ~x1:1 ~y1:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bbox_of_points_join () =
  let b = Bbox.of_points [ (1, 1); (4, 0); (2, 3) ] in
  check_int "x1" 4 b.Bbox.x1;
  check_int "y1" 3 b.Bbox.y1;
  let j = Bbox.join b (Bbox.of_cells (0, 0) (0, 0)) in
  check_int "joined x0" 0 j.Bbox.x0

let test_bbox_intersections () =
  let a = Bbox.of_cells (0, 0) (2, 2) in
  let b = Bbox.of_cells (2, 2) (4, 4) in
  let c = Bbox.of_cells (3, 3) (4, 4) in
  let d = Bbox.of_cells (4, 0) (5, 1) in
  check_bool "share cell" true (Bbox.intersects a b);
  check_bool "disjoint cells" false (Bbox.intersects a c);
  (* a spans cells 0-2; c starts at 3: they share the channel column x=3 *)
  check_bool "vertex touching" true (Bbox.touches_or_intersects a c);
  check_bool "far apart" false (Bbox.touches_or_intersects a d)

let test_bbox_nesting () =
  let outer = Bbox.of_cells (0, 0) (5, 5) in
  let inner = Bbox.of_cells (2, 2) (3, 3) in
  let touching = Bbox.of_cells (0, 2) (3, 3) in
  check_bool "contains" true (Bbox.contains outer inner);
  check_bool "strict" true (Bbox.strictly_nests ~outer ~inner);
  check_bool "not strict on boundary" false
    (Bbox.strictly_nests ~outer ~inner:touching);
  check_bool "contains on boundary" true (Bbox.contains outer touching);
  check_bool "point" true (Bbox.contains_point outer (5, 0));
  check_bool "point out" false (Bbox.contains_point inner (5, 0))

(* ------------------------------------------------------------------ *)
(* Path                                                                 *)

let grid5 = Grid.create 5

let vid x y = Grid.vertex_id grid5 ~x ~y

let test_path_valid () =
  let p = Path.of_vertices grid5 [ vid 0 0; vid 1 0; vid 1 1; vid 2 1 ] in
  check_int "length" 4 (Path.length p);
  check_int "source" (vid 0 0) (Path.source p);
  check_int "target" (vid 2 1) (Path.target p);
  check_bool "mem" true (Path.mem p (vid 1 1));
  check_bool "not mem" false (Path.mem p (vid 3 3))

let test_path_single_vertex () =
  let p = Path.of_vertices grid5 [ vid 2 2 ] in
  check_int "length 1" 1 (Path.length p);
  check_int "src=tgt" (Path.source p) (Path.target p)

let test_path_invalid () =
  check_bool "empty" true
    (match Path.of_vertices grid5 [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "not adjacent" true
    (match Path.of_vertices grid5 [ vid 0 0; vid 2 0 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "repeat" true
    (match Path.of_vertices grid5 [ vid 0 0; vid 1 0; vid 0 0 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_path_disjoint () =
  let p1 = Path.of_vertices grid5 [ vid 0 0; vid 1 0 ] in
  let p2 = Path.of_vertices grid5 [ vid 0 1; vid 1 1 ] in
  let p3 = Path.of_vertices grid5 [ vid 1 0; vid 1 1 ] in
  check_bool "disjoint" true (Path.disjoint p1 p2);
  check_bool "overlap p1" false (Path.disjoint p1 p3);
  check_bool "overlap p2" false (Path.disjoint p2 p3)

let test_path_connects_cells () =
  let c00 = Grid.cell_id grid5 ~x:0 ~y:0 and c22 = Grid.cell_id grid5 ~x:2 ~y:2 in
  let p = Path.of_vertices grid5 [ vid 1 1; vid 2 1; vid 2 2 ] in
  check_bool "connects" true (Path.connects_cells grid5 p c00 c22);
  check_bool "reversed" true (Path.connects_cells grid5 p c22 c00);
  let c44 = Grid.cell_id grid5 ~x:4 ~y:4 in
  check_bool "wrong cells" false (Path.connects_cells grid5 p c00 c44)

let test_path_within_bbox () =
  let box = Bbox.of_cells (0, 0) (1, 1) in
  let inside = Path.of_vertices grid5 [ vid 0 0; vid 1 0; vid 2 0 ] in
  let outside = Path.of_vertices grid5 [ vid 2 0; vid 3 0 ] in
  check_bool "inside" true (Path.within_bbox grid5 box inside);
  check_bool "outside" false (Path.within_bbox grid5 box outside)

(* ------------------------------------------------------------------ *)
(* Occupancy                                                            *)

let test_occupancy () =
  let occ = Occupancy.create grid5 in
  check_bool "free" true (Occupancy.is_free occ (vid 1 1));
  let p = Path.of_vertices grid5 [ vid 0 0; vid 1 0 ] in
  Occupancy.reserve_path occ p;
  check_bool "taken" false (Occupancy.is_free occ (vid 1 0));
  check_int "count" 2 (Occupancy.occupied_count occ);
  Alcotest.(check (float 1e-9)) "utilization" (2. /. 36.) (Occupancy.utilization occ);
  check_bool "double reserve" true
    (match Occupancy.reserve_path occ p with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Occupancy.release_path occ p;
  check_int "released" 0 (Occupancy.occupied_count occ);
  check_bool "double release" true
    (match Occupancy.release_path occ p with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Occupancy.reserve_path occ p;
  Occupancy.clear occ;
  check_int "cleared" 0 (Occupancy.occupied_count occ)

(* ------------------------------------------------------------------ *)
(* Placement                                                            *)

let test_placement_basic () =
  let p = Placement.identity grid5 ~num_qubits:10 in
  check_int "qubits" 10 (Placement.num_qubits p);
  check_int "cell of 3" 3 (Placement.cell_of_qubit p 3);
  Alcotest.(check (option int)) "qubit of 3" (Some 3) (Placement.qubit_of_cell p 3);
  Alcotest.(check (option int)) "empty cell" None (Placement.qubit_of_cell p 20)

let test_placement_swap_move () =
  let p = Placement.identity grid5 ~num_qubits:4 in
  Placement.swap_qubits p 0 3;
  check_int "0 at 3" 3 (Placement.cell_of_qubit p 0);
  check_int "3 at 0" 0 (Placement.cell_of_qubit p 3);
  Alcotest.(check (option int)) "cell 0 holds q3" (Some 3) (Placement.qubit_of_cell p 0);
  Placement.move_qubit p ~qubit:1 ~cell:10;
  check_int "moved" 10 (Placement.cell_of_qubit p 1);
  Alcotest.(check (option int)) "old cell empty" None (Placement.qubit_of_cell p 1);
  check_bool "move to occupied" true
    (match Placement.move_qubit p ~qubit:2 ~cell:10 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_placement_invalid () =
  check_bool "duplicate" true
    (match Placement.create grid5 ~num_qubits:2 ~cells:[| 1; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "too many" true
    (match Placement.create (Grid.create 2) ~num_qubits:5 ~cells:[| 0; 1; 2; 3; 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_placement_snake () =
  let g = Grid.create 3 in
  let p = Placement.of_order g [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] in
  (* consecutive qubits in the order are in adjacent cells *)
  for q = 0 to 7 do
    check_int
      (Printf.sprintf "q%d adjacent to q%d" q (q + 1))
      1
      (Placement.distance p q (q + 1))
  done

let test_placement_of_order_permuted () =
  let g = Grid.create 2 in
  let p = Placement.of_order g [ 2; 0; 3; 1 ] in
  (* q2 first in snake order -> cell 0 *)
  check_int "q2 at cell 0" 0 (Placement.cell_of_qubit p 2);
  check_int "q0 second" 1 (Placement.cell_of_qubit p 0)

let test_placement_random_valid () =
  let rng = Qec_util.Rng.create 3 in
  let p = Placement.random rng grid5 ~num_qubits:20 in
  let cells = Placement.to_array p in
  check_int "distinct cells" 20
    (List.length (List.sort_uniq compare (Array.to_list cells)))

let test_placement_bbox () =
  let p = Placement.identity grid5 ~num_qubits:25 in
  (* qubit 0 at (0,0), qubit 12 at (2,2) on the 5-wide grid *)
  let b = Placement.cx_bbox p 0 12 in
  check_int "x0" 0 b.Bbox.x0;
  check_int "x1" 2 b.Bbox.x1;
  check_int "y1" 2 b.Bbox.y1

let test_placement_copy_equal () =
  let p = Placement.identity grid5 ~num_qubits:5 in
  let q = Placement.copy p in
  check_bool "equal" true (Placement.equal p q);
  Placement.swap_qubits q 0 1;
  check_bool "diverged" false (Placement.equal p q);
  check_int "original intact" 0 (Placement.cell_of_qubit p 0)

let () =
  Alcotest.run "lattice"
    [
      ( "grid",
        [
          Alcotest.test_case "sizes" `Quick test_grid_sizes;
          Alcotest.test_case "vertex ids" `Quick test_grid_vertex_ids;
          Alcotest.test_case "cell corners" `Quick test_grid_cell_corners;
          Alcotest.test_case "neighbors" `Quick test_grid_neighbors;
          Alcotest.test_case "distances" `Quick test_grid_distances;
          Alcotest.test_case "bounds" `Quick test_grid_bounds;
        ] );
      ( "bbox",
        [
          Alcotest.test_case "construction" `Quick test_bbox_construction;
          Alcotest.test_case "invalid" `Quick test_bbox_invalid;
          Alcotest.test_case "points/join" `Quick test_bbox_of_points_join;
          Alcotest.test_case "intersections" `Quick test_bbox_intersections;
          Alcotest.test_case "nesting" `Quick test_bbox_nesting;
        ] );
      ( "path",
        [
          Alcotest.test_case "valid" `Quick test_path_valid;
          Alcotest.test_case "single vertex" `Quick test_path_single_vertex;
          Alcotest.test_case "invalid" `Quick test_path_invalid;
          Alcotest.test_case "disjoint" `Quick test_path_disjoint;
          Alcotest.test_case "connects cells" `Quick test_path_connects_cells;
          Alcotest.test_case "within bbox" `Quick test_path_within_bbox;
        ] );
      ("occupancy", [ Alcotest.test_case "lifecycle" `Quick test_occupancy ]);
      ( "placement",
        [
          Alcotest.test_case "basic" `Quick test_placement_basic;
          Alcotest.test_case "swap/move" `Quick test_placement_swap_move;
          Alcotest.test_case "invalid" `Quick test_placement_invalid;
          Alcotest.test_case "snake" `Quick test_placement_snake;
          Alcotest.test_case "of_order permuted" `Quick test_placement_of_order_permuted;
          Alcotest.test_case "random" `Quick test_placement_random_valid;
          Alcotest.test_case "bbox" `Quick test_placement_bbox;
          Alcotest.test_case "copy/equal" `Quick test_placement_copy_equal;
        ] );
    ]
