(* Tests for the benchmark-circuit generators. *)

module B = Qec_benchmarks
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_qft_counts () =
  (* n H gates + n(n-1)/2 controlled phases *)
  List.iter
    (fun n ->
      let c = B.Qft.circuit n in
      check_int
        (Printf.sprintf "qft%d gates" n)
        (n + (n * (n - 1) / 2))
        (C.length c);
      check_int "qubits" n (C.num_qubits c))
    [ 1; 2; 5; 16; 50 ]

let test_qft_swaps () =
  let c = B.Qft.circuit ~with_swaps:true 6 in
  check_int "3 swaps" 3 (C.count_if (function G.Swap _ -> true | _ -> false) c)

let test_qft_angles_halve () =
  let c = B.Qft.circuit 3 in
  let angles =
    Array.to_list (C.gates c)
    |> List.filter_map (function G.Cphase (_, _, a) -> Some a | _ -> None)
  in
  match angles with
  | [ a1; a2; a3 ] ->
    Alcotest.(check (float 1e-9)) "pi/2" (Float.pi /. 2.) a1;
    Alcotest.(check (float 1e-9)) "pi/4" (Float.pi /. 4.) a2;
    Alcotest.(check (float 1e-9)) "pi/2 again" (Float.pi /. 2.) a3
  | _ -> Alcotest.fail "expected 3 phases"

let test_bv_counts () =
  (* BV-100 = 299 gates in the paper: n H + (n-1) CX + n H *)
  let c = B.Bv.circuit 100 in
  check_int "bv100 gates" 299 (C.length c);
  check_int "cx count" 99 (C.count_if (function G.Cx _ -> true | _ -> false) c)

let test_bv_secret () =
  let secret = [| true; false; true |] in
  let c = B.Bv.circuit ~secret 4 in
  check_int "2 cx" 2 (C.count_if (function G.Cx _ -> true | _ -> false) c)

let test_bv_no_cx_parallelism () =
  (* every oracle CX shares the ancilla: CX layers have width 1 (Fig. 6) *)
  let d = Dag.of_circuit (B.Bv.circuit 20) in
  List.iter
    (fun (k, _) -> check_bool "layer width <= 1" true (k <= 1))
    (Dag.two_qubit_layer_histogram d)

let test_cc_counts () =
  (* CC-100 = 198 gates in the paper *)
  check_int "cc100" 198 (C.length (B.Cc.circuit 100))

let test_ising_structure () =
  let c = B.Ising.circuit ~steps:1 10 in
  (* 10 Rx + 9 links x (2 CX + 1 Rz) *)
  check_int "gates" (10 + (9 * 3)) (C.length c);
  let k = Qec_circuit.Coupling.of_circuit c in
  check_bool "degree two" true (Qec_circuit.Coupling.is_degree_two k)

let test_ising_parallelism () =
  (* n/2 simultaneous CX in the even sublayer (Fig. 7) *)
  let d = Dag.of_circuit (B.Ising.circuit ~steps:1 10) in
  let widths = List.map fst (Dag.two_qubit_layer_histogram d) in
  check_bool "has width-5 layer" true (List.mem 5 widths)

let test_qaoa_regular () =
  let es = B.Qaoa.edges ~degree:3 40 in
  check_int "edge count" (40 * 3 / 2) (List.length es);
  let deg = Array.make 40 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    es;
  Array.iteri (fun i d -> check_int (Printf.sprintf "deg q%d" i) 3 d) deg;
  (* no self loops / multi-edges *)
  check_int "simple" (List.length es)
    (List.length (List.sort_uniq compare es));
  check_bool "no self loop" true (List.for_all (fun (u, v) -> u <> v) es)

let test_qaoa_deterministic () =
  let a = B.Qaoa.circuit ~seed:5 20 and b = B.Qaoa.circuit ~seed:5 20 in
  check_bool "same circuit" true (C.gates a = C.gates b);
  let c = B.Qaoa.circuit ~seed:6 20 in
  check_bool "different seed differs" false (C.gates a = C.gates c)

let test_qaoa_invalid () =
  check_bool "odd n*degree" true
    (match B.Qaoa.edges ~degree:3 5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bwt_shape () =
  let c = B.Bwt.circuit ~height:4 () in
  check_int "qubits" (B.Bwt.num_qubits ~height:4) (C.num_qubits c);
  check_int "qubits formula" 31 (C.num_qubits c);
  check_bool "has gates" true (C.length c > 30);
  (* sequential walker updates make the DAG deep relative to its size *)
  let d = Dag.of_circuit c in
  check_bool "deep" true (Dag.depth d > 15)

let test_bwt_deterministic () =
  let a = B.Bwt.circuit ~height:3 () and b = B.Bwt.circuit ~height:3 () in
  check_bool "same" true (C.gates a = C.gates b)

let test_shor_shape () =
  let c = B.Shor.circuit ~bits:8 () in
  check_int "qubits" 19 (C.num_qubits c);
  check_bool "cphase heavy" true
    (C.count_if (function G.Cphase _ -> true | _ -> false) c
    > C.length c / 2);
  check_int "measures" 8
    (C.count_if (function G.Measure _ -> true | _ -> false) c)

let test_shor_multipliers_scale () =
  let small = B.Shor.circuit ~multipliers:2 ~bits:8 () in
  let big = B.Shor.circuit ~multipliers:8 ~bits:8 () in
  check_bool "more multipliers -> more gates" true
    (C.length big > C.length small)

let test_building_blocks () =
  List.iter
    (fun name ->
      let c = B.Building_blocks.by_name name in
      check_bool (name ^ " nonempty") true (C.length c > 0);
      check_bool (name ^ " narrow") true
        (C.count_if
           (fun g -> not (G.is_single_qubit g || G.is_two_qubit g))
           c
        = 0))
    B.Building_blocks.names

let test_building_blocks_sizes () =
  (* qubit counts must match the paper's Table 2 *)
  let expect = [ ("4gt11_8", 5); ("rd32-v0", 4); ("urf2_277", 8); ("squar7", 15) ] in
  List.iter
    (fun (name, q) ->
      check_int name q (C.num_qubits (B.Building_blocks.by_name name)))
    expect

let test_building_blocks_gate_calibration () =
  (* elementary count lands within 10% of the Table 2 target *)
  let c = B.Building_blocks.by_name "urf2_277" in
  let g = C.length c in
  check_bool "calibrated" true (g > 18000 && g < 23000)

let test_registry_family () =
  let c = B.Registry.build "qft10" in
  check_int "qft10" 10 (C.num_qubits c);
  let c = B.Registry.build "bv50" in
  check_int "bv50" 50 (C.num_qubits c)

let test_registry_fixed () =
  let c = B.Registry.build "urf2_277" in
  check_int "urf2" 8 (C.num_qubits c);
  let c = B.Registry.build "shor471" in
  check_int "shor471 qubits" 471 (C.num_qubits c);
  check_bool "shor471 ~36.5K gates" true
    (C.length c > 30000 && C.length c < 45000)

let test_registry_unknown () =
  check_bool "unknown raises" true
    (match B.Registry.build "nonsense" with
    | exception Not_found -> true
    | _ -> false)

let test_registry_all_names () =
  check_bool "names listed" true (List.length (B.Registry.all_names ()) > 10)

let () =
  Alcotest.run "benchmarks"
    [
      ( "qft",
        [
          Alcotest.test_case "counts" `Quick test_qft_counts;
          Alcotest.test_case "swaps" `Quick test_qft_swaps;
          Alcotest.test_case "angles" `Quick test_qft_angles_halve;
        ] );
      ( "bv/cc",
        [
          Alcotest.test_case "bv counts" `Quick test_bv_counts;
          Alcotest.test_case "bv secret" `Quick test_bv_secret;
          Alcotest.test_case "bv serial" `Quick test_bv_no_cx_parallelism;
          Alcotest.test_case "cc counts" `Quick test_cc_counts;
        ] );
      ( "ising",
        [
          Alcotest.test_case "structure" `Quick test_ising_structure;
          Alcotest.test_case "parallelism" `Quick test_ising_parallelism;
        ] );
      ( "qaoa",
        [
          Alcotest.test_case "regular graph" `Quick test_qaoa_regular;
          Alcotest.test_case "deterministic" `Quick test_qaoa_deterministic;
          Alcotest.test_case "invalid" `Quick test_qaoa_invalid;
        ] );
      ( "bwt/shor",
        [
          Alcotest.test_case "bwt shape" `Quick test_bwt_shape;
          Alcotest.test_case "bwt deterministic" `Quick test_bwt_deterministic;
          Alcotest.test_case "shor shape" `Quick test_shor_shape;
          Alcotest.test_case "shor multipliers" `Quick test_shor_multipliers_scale;
        ] );
      ( "building blocks",
        [
          Alcotest.test_case "all parse" `Quick test_building_blocks;
          Alcotest.test_case "qubit counts" `Quick test_building_blocks_sizes;
          Alcotest.test_case "gate calibration" `Quick test_building_blocks_gate_calibration;
        ] );
      ( "registry",
        [
          Alcotest.test_case "family" `Quick test_registry_family;
          Alcotest.test_case "fixed" `Quick test_registry_fixed;
          Alcotest.test_case "unknown" `Quick test_registry_unknown;
          Alcotest.test_case "names" `Quick test_registry_all_names;
        ] );
    ]
