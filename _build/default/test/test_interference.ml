(* Tests for the CX interference graph. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Task = Autobraid.Task
module I = Autobraid.Interference

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

(* three gates: 0 and 1 overlap, 2 is far away *)
let sample () =
  let p = placement_at 10 [ (0, 0); (2, 2); (1, 1); (3, 3); (8, 8); (9, 9) ] in
  (p, I.build p (tasks 3))

let test_build () =
  let _, ig = sample () in
  check_int "nodes" 3 (I.node_count ig);
  check_int "original" 3 (I.original_count ig);
  check_int "deg 0" 1 (I.degree ig 0);
  check_int "deg 1" 1 (I.degree ig 1);
  check_int "deg 2" 0 (I.degree ig 2);
  check_int "max degree" 1 (I.max_degree ig)

let test_neighbors () =
  let _, ig = sample () in
  Alcotest.(check (list int))
    "nbrs of 0" [ 1 ]
    (List.map (fun t -> t.Task.id) (I.neighbors ig 0));
  Alcotest.(check (list int))
    "nbrs of 2" []
    (List.map (fun t -> t.Task.id) (I.neighbors ig 2))

let test_max_degree_nodes () =
  let _, ig = sample () in
  Alcotest.(check (list int))
    "max nodes" [ 0; 1 ]
    (List.map (fun t -> t.Task.id) (I.max_degree_nodes ig))

let test_remove () =
  let _, ig = sample () in
  I.remove ig 0;
  check_int "nodes after" 2 (I.node_count ig);
  check_int "original unchanged" 3 (I.original_count ig);
  check_int "degree updated" 0 (I.degree ig 1);
  check_bool "mem removed" false (I.mem ig 0);
  check_bool "raises on absent" true
    (match I.degree ig 0 with exception Not_found -> true | _ -> false)

let test_empty () =
  let p = placement_at 4 [ (0, 0) ] in
  let ig = I.build p [] in
  check_int "empty nodes" 0 (I.node_count ig);
  check_int "max degree" 0 (I.max_degree ig);
  Alcotest.(check (list int)) "no max nodes" []
    (List.map (fun t -> t.Task.id) (I.max_degree_nodes ig))

let test_clique () =
  (* four mutually overlapping gates -> K4 *)
  let p =
    placement_at 10
      [ (0, 0); (3, 3); (1, 1); (4, 4); (2, 2); (5, 5); (0, 3); (3, 0) ]
  in
  let ig = I.build p (tasks 4) in
  check_int "max degree" 3 (I.max_degree ig);
  List.iter (fun i -> check_int "deg" 3 (I.degree ig i)) [ 0; 1; 2; 3 ];
  I.remove ig 3;
  List.iter (fun i -> check_int "deg after" 2 (I.degree ig i)) [ 0; 1; 2 ]

let prop_degrees_symmetric =
  QCheck.Test.make ~name:"edge degrees consistent" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10)
              (pair (pair (int_bound 7) (int_bound 7))
                 (pair (int_bound 7) (int_bound 7))))
    (fun coords ->
      let flat = List.concat_map (fun ((a, b), (c, d)) -> [ (a, b); (c, d) ]) coords in
      let distinct = List.sort_uniq compare flat in
      QCheck.assume (List.length distinct = List.length flat);
      let p = placement_at 8 flat in
      let k = List.length coords in
      let ig = I.build p (tasks k) in
      (* sum of degrees is even, and each neighbor listing is mutual *)
      let sum =
        List.fold_left (fun acc i -> acc + I.degree ig i) 0
          (List.init k (fun i -> i))
      in
      sum mod 2 = 0
      && List.for_all
           (fun i ->
             List.for_all
               (fun t ->
                 List.exists (fun u -> u.Task.id = i) (I.neighbors ig t.Task.id))
               (I.neighbors ig i))
           (List.init k (fun i -> i)))

let () =
  Alcotest.run "interference"
    [
      ( "interference",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "max degree nodes" `Quick test_max_degree_nodes;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "clique" `Quick test_clique;
          QCheck_alcotest.to_alcotest prop_degrees_symmetric;
        ] );
    ]
