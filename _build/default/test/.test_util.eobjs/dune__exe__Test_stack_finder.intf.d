test/test_stack_finder.mli:
