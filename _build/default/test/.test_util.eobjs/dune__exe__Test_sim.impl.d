test/test_sim.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Qec_benchmarks Qec_circuit Qec_qasm Qec_sim
