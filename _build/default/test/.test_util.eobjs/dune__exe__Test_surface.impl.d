test/test_surface.ml: Alcotest List Qec_benchmarks Qec_circuit Qec_surface
