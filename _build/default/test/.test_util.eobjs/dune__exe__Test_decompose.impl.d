test/test_decompose.ml: Alcotest Array List QCheck QCheck_alcotest Qec_circuit
