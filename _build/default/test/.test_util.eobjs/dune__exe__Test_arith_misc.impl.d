test/test_arith_misc.ml: Alcotest Array Autobraid Filename Gp_baseline List Qec_benchmarks Qec_circuit Qec_qasm Qec_revlib Qec_surface Sys
