test/test_magic.mli:
