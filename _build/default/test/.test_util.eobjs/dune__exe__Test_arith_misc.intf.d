test/test_arith_misc.mli:
