test/test_llg.mli:
