test/test_stress.ml: Alcotest Array Autobraid List Printf Qec_benchmarks Qec_circuit Qec_lattice Qec_surface
