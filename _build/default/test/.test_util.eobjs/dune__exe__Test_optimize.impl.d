test/test_optimize.ml: Alcotest Array Autobraid List QCheck QCheck_alcotest Qec_circuit Qec_surface
