test/test_revlib.mli:
