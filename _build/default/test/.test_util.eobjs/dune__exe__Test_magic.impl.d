test/test_magic.ml: Alcotest Autobraid List Qec_benchmarks Qec_circuit Qec_lattice Qec_magic Qec_surface
