test/test_util.ml: Alcotest Array Autobraid Gen Hashtbl List QCheck QCheck_alcotest Qec_circuit Qec_surface Qec_util String
