test/test_gate.ml: Alcotest List QCheck QCheck_alcotest Qec_circuit String
