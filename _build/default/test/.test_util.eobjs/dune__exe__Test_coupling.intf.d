test/test_coupling.mli:
