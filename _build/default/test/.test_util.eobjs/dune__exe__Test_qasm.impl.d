test/test_qasm.ml: Alcotest Char Float List Printf QCheck QCheck_alcotest Qec_circuit Qec_qasm String
