test/test_planar.mli:
