test/test_router.ml: Alcotest Array Gen List QCheck QCheck_alcotest Qec_lattice
