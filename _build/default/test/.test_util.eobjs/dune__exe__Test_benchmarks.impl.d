test/test_benchmarks.ml: Alcotest Array Float List Printf Qec_benchmarks Qec_circuit
