test/test_compaction.ml: Alcotest Array Autobraid Gen List QCheck QCheck_alcotest Qec_benchmarks Qec_lattice Qec_surface
