test/test_interference.ml: Alcotest Array Autobraid Gen List QCheck QCheck_alcotest Qec_lattice
