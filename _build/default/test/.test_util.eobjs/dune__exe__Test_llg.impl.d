test/test_llg.ml: Alcotest Array Autobraid List QCheck QCheck_alcotest Qec_lattice
