test/test_baseline.ml: Alcotest Autobraid Gp_baseline List Printf Qec_benchmarks Qec_circuit Qec_surface
