test/test_trace.ml: Alcotest Autobraid List QCheck QCheck_alcotest Qec_benchmarks Qec_circuit Qec_lattice Qec_qasm Qec_surface String
