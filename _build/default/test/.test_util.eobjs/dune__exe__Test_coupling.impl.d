test/test_coupling.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Qec_circuit
