test/test_revlib.ml: Alcotest Array List QCheck QCheck_alcotest Qec_circuit Qec_revlib String
