test/test_circuit.ml: Alcotest Gen List QCheck QCheck_alcotest Qec_circuit
