test/test_scheduler.ml: Alcotest Autobraid List QCheck QCheck_alcotest Qec_benchmarks Qec_circuit Qec_surface
