test/test_lattice.ml: Alcotest Array List Printf Qec_lattice Qec_util
