test/test_cli.ml: Alcotest Filename Fun List Printf Qec_circuit Qec_qasm String Sys
