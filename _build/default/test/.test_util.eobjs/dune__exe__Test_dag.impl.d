test/test_dag.ml: Alcotest Array List QCheck QCheck_alcotest Qec_circuit
