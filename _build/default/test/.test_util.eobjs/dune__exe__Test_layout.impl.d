test/test_layout.ml: Alcotest Array Autobraid List Printf Qec_benchmarks Qec_circuit Qec_lattice
