test/test_report.ml: Alcotest Autobraid Filename Fun Gp_baseline List Qec_benchmarks Qec_circuit Qec_lattice Qec_report Qec_surface String Sys
