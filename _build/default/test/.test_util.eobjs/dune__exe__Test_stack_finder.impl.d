test/test_stack_finder.ml: Alcotest Array Autobraid List QCheck QCheck_alcotest Qec_lattice
