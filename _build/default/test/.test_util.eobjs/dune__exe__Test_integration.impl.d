test/test_integration.ml: Alcotest Autobraid Filename Fun Gp_baseline List Qec_benchmarks Qec_circuit Qec_qasm Qec_revlib Qec_surface Sys
