test/test_partition.ml: Alcotest Array Gen List QCheck QCheck_alcotest Qec_benchmarks Qec_circuit Qec_lattice Qec_partition Qec_util
