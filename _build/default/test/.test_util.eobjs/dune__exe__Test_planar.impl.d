test/test_planar.ml: Alcotest Autobraid List Qec_benchmarks Qec_circuit Qec_planar Qec_surface
