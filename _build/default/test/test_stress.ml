(* Stress and failure-injection tests: extreme lattice occupancies,
   degenerate grids, adversarial layouts, and a full options matrix. *)

module S = Autobraid.Scheduler
module IL = Autobraid.Initial_layout
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Task = Autobraid.Task
module SF = Autobraid.Stack_finder
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = Qec_surface.Timing.make ~d:33 ()

(* ------------------------------------------------------------------ *)
(* Full lattice: every cell occupied (n = L^2)                          *)

let test_full_lattice_qft () =
  (* 16 qubits on a 4x4 grid: zero spare cells, heavy communication *)
  let r = S.run timing (B.Qft.circuit 16) in
  check_int "no spare cells" 16 (r.S.lattice_side * r.S.lattice_side);
  check_bool "completes" true (r.S.total_cycles >= r.S.critical_path_cycles)

let test_full_lattice_all_sizes () =
  List.iter
    (fun n ->
      let r = S.run timing (B.Qaoa.circuit n) in
      check_bool
        (Printf.sprintf "full lattice n=%d" n)
        true
        (r.S.total_cycles >= r.S.critical_path_cycles))
    [ 4; 16; 36 ]

let test_full_lattice_traced_valid () =
  let _, trace = S.run_traced timing (B.Qft.circuit 25) in
  match Autobraid.Trace.validate trace with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Degenerate grids                                                     *)

let test_single_qubit_circuit () =
  let c = C.create ~num_qubits:1 G.[ H 0; T 0; H 0; Measure 0 ] in
  let r = S.run timing c in
  check_int "1x1 lattice" 1 r.S.lattice_side;
  check_int "4 serial local rounds" (4 * 33) r.S.total_cycles

let test_two_qubit_ping_pong () =
  (* 200 alternating CXs between two qubits on a 2x2 grid *)
  let gates = List.init 200 (fun i -> if i mod 2 = 0 then G.Cx (0, 1) else G.Cx (1, 0)) in
  let c = C.create ~num_qubits:2 gates in
  let r = S.run timing c in
  check_int "one braid per round" 200 r.S.braid_rounds;
  check_int "cp equals total" r.S.critical_path_cycles r.S.total_cycles

let test_wide_shallow () =
  (* 100 qubits, single layer of 50 disjoint CXs *)
  let gates = List.init 50 (fun i -> G.Cx (2 * i, (2 * i) + 1)) in
  let c = C.create ~num_qubits:100 gates in
  let r = S.run timing c in
  check_bool "few rounds" true (r.S.braid_rounds <= 6);
  check_bool "cp is one braid" true (r.S.critical_path_cycles = 66)

(* ------------------------------------------------------------------ *)
(* Fig. 15 generalization: m crossing pairs, static needs ~m/3 rounds   *)

let crossing_pairs_placement m l =
  (* m pairs, each connecting opposite boundary sides through the center:
     generalizes Fig. 9's four pairs. Qubit 2i and 2i+1 are pair i. *)
  let coords = ref [] in
  for i = 0 to m - 1 do
    (* spread endpoints around the boundary, pair i offset by i cells *)
    let a, b =
      match i mod 4 with
      | 0 -> ((0, 1 + (i / 4)), (l - 1, l - 2 - (i / 4)))
      | 1 -> ((1 + (i / 4), 0), (l - 2 - (i / 4), l - 1))
      | 2 -> ((0, l - 2 - (i / 4)), (l - 1, 1 + (i / 4)))
      | _ -> ((1 + (i / 4), l - 1), (l - 2 - (i / 4), 0))
    in
    coords := b :: a :: !coords
  done;
  let coords = List.rev !coords in
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(2 * m) ~cells

let test_crossing_pairs_congestion () =
  let m = 8 in
  let placement = crossing_pairs_placement m 10 in
  let tasks = List.init m (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 }) in
  let router = Router.create (Placement.grid placement) in
  let occ = Occupancy.create (Placement.grid placement) in
  let outcome = SF.find router occ placement tasks in
  (* all crossing near the center: far from all m simultaneously *)
  check_bool "congested" true (List.length outcome.SF.routed < m);
  check_bool "progress" true (List.length outcome.SF.routed >= 1)

let test_crossing_pairs_swaps_help () =
  (* the full scheduler should beat the sp scheduler on this pattern when
     the congestion trigger is active *)
  let m = 8 in
  let gates = List.init m (fun i -> G.Cx (2 * i, (2 * i) + 1)) in
  (* repeat the layer several times so layout improvements amortize *)
  let c = C.create ~num_qubits:(2 * m) (List.concat (List.init 6 (fun _ -> gates))) in
  let sp = S.run ~options:{ S.default_options with variant = S.Sp } timing c in
  let full =
    S.run
      ~options:{ S.default_options with threshold_p = 0.8 }
      timing c
  in
  check_bool "full within sp (swaps may or may not trigger)" true
    (full.S.total_cycles <= sp.S.total_cycles + (6 * 33 * 4))

(* ------------------------------------------------------------------ *)
(* Options matrix: every combination stays valid                        *)

let test_options_matrix () =
  let c = B.Qaoa.circuit 16 in
  List.iter
    (fun variant ->
      List.iter
        (fun initial ->
          List.iter
            (fun retry ->
              List.iter
                (fun compaction ->
                  let options =
                    {
                      S.default_options with
                      variant;
                      initial;
                      retry;
                      compaction;
                      threshold_p = 0.5;
                    }
                  in
                  let result, trace = S.run_traced ~options timing c in
                  (match Autobraid.Trace.validate trace with
                  | Ok () -> ()
                  | Error m -> Alcotest.fail m);
                  check_bool "cp bound" true
                    (result.S.critical_path_cycles <= result.S.total_cycles))
                [ false; true ])
            [ false; true ])
        [ IL.Identity; IL.Bisected; IL.Partitioned; IL.Annealed ])
    [ S.Sp; S.Full ]

(* ------------------------------------------------------------------ *)
(* Long-haul determinism                                                *)

let test_repeated_runs_identical () =
  let c = B.Misc_circuits.random_clifford_t ~seed:77 ~gates:400 20 in
  let results = List.init 3 (fun _ -> (S.run timing c).S.total_cycles) in
  match results with
  | a :: rest -> List.iter (fun b -> check_int "identical" a b) rest
  | [] -> ()

let test_big_sequential_block () =
  (* urf-style: tens of thousands of gates on 8 qubits *)
  let c =
    B.Building_blocks.random_mct ~seed:3 ~qubits:8 ~target_gates:5000
      ~name:"stress_mct" ()
  in
  let r = S.run timing c in
  check_bool "completes" true (r.S.total_cycles > 0);
  check_bool "close to CP (small lattice)" true
    (float_of_int r.S.total_cycles
    <= 1.25 *. float_of_int r.S.critical_path_cycles)

let () =
  Alcotest.run "stress"
    [
      ( "full lattice",
        [
          Alcotest.test_case "qft16 on 4x4" `Quick test_full_lattice_qft;
          Alcotest.test_case "perfect squares" `Quick test_full_lattice_all_sizes;
          Alcotest.test_case "trace valid" `Quick test_full_lattice_traced_valid;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "single qubit" `Quick test_single_qubit_circuit;
          Alcotest.test_case "two-qubit ping-pong" `Quick test_two_qubit_ping_pong;
          Alcotest.test_case "wide shallow" `Quick test_wide_shallow;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "crossing pairs congest" `Quick test_crossing_pairs_congestion;
          Alcotest.test_case "swaps bounded" `Quick test_crossing_pairs_swaps_help;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "all options valid" `Slow test_options_matrix;
          Alcotest.test_case "determinism" `Quick test_repeated_runs_identical;
          Alcotest.test_case "big sequential" `Quick test_big_sequential_block;
        ] );
    ]
