(* Tests for the qubit coupling graph. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module K = Qec_circuit.Coupling

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let chain n =
  (* 0-1-2-...-(n-1) path coupling *)
  C.create ~num_qubits:n
    (List.init (n - 1) (fun i -> G.Cx (i, i + 1)))

let test_weights () =
  let c = C.create ~num_qubits:3 G.[ Cx (0, 1); Cx (1, 0); Cz (1, 2) ] in
  let k = K.of_circuit c in
  check_int "0-1 weight (symmetric)" 2 (K.weight k 0 1);
  check_int "1-0 weight" 2 (K.weight k 1 0);
  check_int "1-2 weight" 1 (K.weight k 1 2);
  check_int "0-2 absent" 0 (K.weight k 0 2);
  check_int "total" 3 (K.total_weight k)

let test_wide_gates_contribute () =
  let c = C.create ~num_qubits:3 [ G.Ccx (0, 1, 2) ] in
  let k = K.of_circuit c in
  check_int "0-1" 1 (K.weight k 0 1);
  check_int "0-2" 1 (K.weight k 0 2);
  check_int "1-2" 1 (K.weight k 1 2)

let test_neighbors_degree () =
  let k = K.of_circuit (chain 5) in
  Alcotest.(check (list (pair int int)))
    "neighbors of 2"
    [ (1, 1); (3, 1) ]
    (K.neighbors k 2);
  check_int "deg endpoint" 1 (K.degree k 0);
  check_int "deg middle" 2 (K.degree k 2);
  check_int "max degree" 2 (K.max_degree k)

let test_edges_sorted () =
  let k = K.of_circuit (chain 4) in
  Alcotest.(check (list (triple int int int)))
    "edges" [ (0, 1, 1); (1, 2, 1); (2, 3, 1) ]
    (K.edges k)

let test_density () =
  let k = K.of_circuit (chain 4) in
  Alcotest.(check (float 1e-9)) "density" 0.5 (K.density k);
  let full =
    C.create ~num_qubits:3 G.[ Cx (0, 1); Cx (0, 2); Cx (1, 2) ]
  in
  Alcotest.(check (float 1e-9)) "complete" 1.0 (K.density (K.of_circuit full))

let test_degree_two_detection () =
  check_bool "chain" true (K.is_degree_two (K.of_circuit (chain 6)));
  let star =
    C.create ~num_qubits:4 G.[ Cx (0, 1); Cx (0, 2); Cx (0, 3) ]
  in
  check_bool "star" false (K.is_degree_two (K.of_circuit star))

let test_chain_order_path () =
  let k = K.of_circuit (chain 5) in
  match K.chain_order k with
  | None -> Alcotest.fail "expected an order"
  | Some order ->
    check_int "length" 5 (List.length order);
    (* every coupled pair must be adjacent in the order *)
    let pos = Array.make 5 0 in
    List.iteri (fun i q -> pos.(q) <- i) order;
    List.iter
      (fun (a, b, _) ->
        check_int (Printf.sprintf "adj %d-%d" a b) 1 (abs (pos.(a) - pos.(b))))
      (K.edges k)

let test_chain_order_ring () =
  let ring =
    C.create ~num_qubits:4 G.[ Cx (0, 1); Cx (1, 2); Cx (2, 3); Cx (3, 0) ]
  in
  let k = K.of_circuit ring in
  match K.chain_order k with
  | None -> Alcotest.fail "expected an order for a ring"
  | Some order ->
    check_int "length" 4 (List.length order);
    check_int "all qubits" 4 (List.length (List.sort_uniq compare order))

let test_chain_order_star_none () =
  let star = C.create ~num_qubits:4 G.[ Cx (0, 1); Cx (0, 2); Cx (0, 3) ] in
  check_bool "no order" true (K.chain_order (K.of_circuit star) = None)

let test_chain_order_isolated () =
  (* isolated qubits appended after the chain *)
  let c = C.create ~num_qubits:5 G.[ Cx (0, 1); Cx (1, 2) ] in
  match K.chain_order (K.of_circuit c) with
  | None -> Alcotest.fail "expected order"
  | Some order ->
    check_int "all present" 5 (List.length (List.sort_uniq compare order))

let prop_weight_symmetric =
  QCheck.Test.make ~name:"weight symmetric" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
      let gates =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (G.Cx (a, b)) else None)
          pairs
      in
      let k = K.of_circuit (C.create ~num_qubits:8 gates) in
      List.for_all
        (fun a -> List.for_all (fun b -> K.weight k a b = K.weight k b a)
            (List.init 8 (fun i -> i)))
        (List.init 8 (fun i -> i)))

let () =
  Alcotest.run "coupling"
    [
      ( "coupling",
        [
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "wide gates" `Quick test_wide_gates_contribute;
          Alcotest.test_case "neighbors/degree" `Quick test_neighbors_degree;
          Alcotest.test_case "edges" `Quick test_edges_sorted;
          Alcotest.test_case "density" `Quick test_density;
          Alcotest.test_case "degree-two" `Quick test_degree_two_detection;
          Alcotest.test_case "chain order (path)" `Quick test_chain_order_path;
          Alcotest.test_case "chain order (ring)" `Quick test_chain_order_ring;
          Alcotest.test_case "chain order (star)" `Quick test_chain_order_star_none;
          Alcotest.test_case "chain order (isolated)" `Quick test_chain_order_isolated;
          QCheck_alcotest.to_alcotest prop_weight_symmetric;
        ] );
    ]
