(* Tests for the arithmetic, Grover, and miscellaneous generators, and for
   the fixture files under fixtures/. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag
module B = Qec_benchmarks
module S = Autobraid.Scheduler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = Qec_surface.Timing.make ~d:33 ()

(* ------------------------------------------------------------------ *)
(* Cuccaro adder                                                        *)

let test_cuccaro_shape () =
  let c = B.Arith.cuccaro_adder 4 in
  check_int "qubits" 10 (C.num_qubits c);
  (* bits MAJ + bits UMA (3 gates each) + 1 carry CX *)
  check_int "gates" ((4 * 3 * 2) + 1) (C.length c);
  check_int "toffolis" 8 (C.count_if (function G.Ccx _ -> true | _ -> false) c)

let test_cuccaro_serial () =
  (* the ripple carry is a dependence chain: depth close to gate count *)
  let c = Qec_circuit.Decompose.to_scheduler_gates (B.Arith.cuccaro_adder 6) in
  let d = Dag.of_circuit c in
  check_bool "deep" true (Dag.depth d > C.length c / 4)

let test_cuccaro_schedules_at_cp () =
  let r = S.run timing (B.Arith.cuccaro_adder 4) in
  let b = Gp_baseline.run timing (B.Arith.cuccaro_adder 4) in
  check_bool "auto <= base" true (r.S.total_cycles <= b.S.total_cycles);
  check_bool "near CP" true
    (float_of_int r.S.total_cycles
    <= 1.2 *. float_of_int r.S.critical_path_cycles)

(* ------------------------------------------------------------------ *)
(* Draper adder                                                         *)

let test_draper_shape () =
  let c = B.Arith.draper_adder 4 in
  check_int "qubits" 8 (C.num_qubits c);
  (* 2 QFTs (4 H + 6 CP each) + 10 addition phases *)
  check_int "H gates" 8 (C.count_if (function G.H _ -> true | _ -> false) c);
  check_int "phases" 22
    (C.count_if (function G.Cphase _ -> true | _ -> false) c)

let test_draper_inverse_angles () =
  let c = B.Arith.draper_adder 3 in
  let angles =
    Array.to_list (C.gates c)
    |> List.filter_map (function G.Cphase (_, _, a) -> Some a | _ -> None)
  in
  check_bool "has negative (inverse QFT) angles" true
    (List.exists (fun a -> a < 0.) angles)

let test_adders_disagree_in_parallelism () =
  (* Cuccaro's carry ripple serializes its two-qubit gates far more than
     Draper's phase fan-in: compare two-qubit depth per two-qubit gate. *)
  let serial_fraction c =
    let c = Qec_circuit.Decompose.to_scheduler_gates c in
    let d = Dag.of_circuit c in
    let depth2q =
      Dag.critical_path ~cost:(fun g -> if G.is_two_qubit g then 1 else 0) d
    in
    float_of_int depth2q /. float_of_int (C.two_qubit_count c)
  in
  check_bool "cuccaro more serial" true
    (serial_fraction (B.Arith.cuccaro_adder 6)
    > serial_fraction (B.Arith.draper_adder 6))

(* ------------------------------------------------------------------ *)
(* Grover                                                               *)

let test_grover_shape () =
  let c = B.Grover.circuit ~iterations:2 5 in
  check_int "qubits (5 search + 2 ancilla)" 7 (C.num_qubits c);
  check_int "measures" 5
    (C.count_if (function G.Measure _ -> true | _ -> false) c);
  check_bool "has toffolis" true
    (C.count_if (function G.Ccx _ -> true | _ -> false) c > 0)

let test_grover_marked_pattern () =
  (* marked = 0 flips every qubit around both oracle applications *)
  let all = B.Grover.circuit ~iterations:1 ~marked:0 4 in
  let none = B.Grover.circuit ~iterations:1 ~marked:15 4 in
  check_bool "more X for marked=0" true
    (C.count_if (function G.X _ -> true | _ -> false) all
    > C.count_if (function G.X _ -> true | _ -> false) none)

let test_grover_bounds () =
  check_bool "n<3" true
    (match B.Grover.circuit 2 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "marked oob" true
    (match B.Grover.circuit ~marked:100 4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_grover_schedules () =
  let r = S.run timing (B.Grover.circuit ~iterations:1 6) in
  check_bool "runs" true (r.S.total_cycles >= r.S.critical_path_cycles)

(* ------------------------------------------------------------------ *)
(* Misc                                                                 *)

let test_ghz () =
  let c = B.Misc_circuits.ghz 8 in
  check_int "gates" 8 (C.length c);
  let star = B.Misc_circuits.ghz_star 8 in
  check_int "star gates" 8 (C.length star);
  (* both are fully serial in communication *)
  List.iter
    (fun c ->
      let r = S.run timing c in
      check_int (C.name c ^ " = CP") r.S.critical_path_cycles r.S.total_cycles)
    [ c; star ]

let test_hidden_shift () =
  let c = B.Misc_circuits.hidden_shift 8 in
  check_int "qubits" 8 (C.num_qubits c);
  check_int "cz pairs (2 layers of n/2)" 8
    (C.count_if (function G.Cz _ -> true | _ -> false) c);
  check_bool "odd rejected" true
    (match B.Misc_circuits.hidden_shift 7 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* disjoint CZ fronts: schedules at the critical path like Ising *)
  let r = S.run timing c in
  check_int "cp" r.S.critical_path_cycles r.S.total_cycles

let test_random_clifford_t () =
  let a = B.Misc_circuits.random_clifford_t ~seed:3 ~gates:100 6 in
  let b = B.Misc_circuits.random_clifford_t ~seed:3 ~gates:100 6 in
  check_bool "deterministic" true (C.gates a = C.gates b);
  check_int "gate count" 100 (C.length a);
  let c = B.Misc_circuits.random_clifford_t ~seed:4 ~gates:100 6 in
  check_bool "seed matters" false (C.gates a = C.gates c)

let test_new_registry_families () =
  List.iter
    (fun name ->
      let c = B.Registry.build name in
      check_bool (name ^ " builds") true (C.length c > 0))
    [ "adder10"; "qftadd8"; "grover6"; "ghz9"; "hshift8"; "randct6" ]

(* ------------------------------------------------------------------ *)
(* Fixture files                                                        *)

(* dune runtest runs in _build/default/test (fixtures copied next to the
   project root); `dune exec` runs from the source root. Try both. *)
let fixture name =
  let candidates =
    [ Filename.concat "../fixtures" name; Filename.concat "fixtures" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

let test_fixture_adder () =
  let c = Qec_qasm.Frontend.of_file (fixture "adder4.qasm") in
  check_int "10 qubits" 10 (C.num_qubits c);
  let r = S.run timing c in
  check_bool "schedules" true (r.S.total_cycles > 0)

let test_fixture_qft () =
  let c = Qec_qasm.Frontend.of_file (fixture "qft5.qasm") in
  check_int "qubits" 5 (C.num_qubits c);
  (* must equal the generator's circuit exactly *)
  let generated = B.Qft.circuit 5 in
  check_int "same gate count" (C.length generated) (C.length c);
  let rf = S.run timing c and rg = S.run timing generated in
  check_int "same schedule" rg.S.total_cycles rf.S.total_cycles

let test_fixture_peres () =
  let c = Qec_revlib.Real_parser.of_file (fixture "peres.real") in
  check_int "gates" 2 (C.length c);
  check_bool "toffoli then cnot" true
    (G.equal (C.gate c 0) (G.Ccx (0, 1, 2)) && G.equal (C.gate c 1) (G.Cx (0, 1)))

let test_fixture_hwb4 () =
  let c = Qec_revlib.Real_parser.of_file (fixture "hwb4.real") in
  check_int "qubits" 4 (C.num_qubits c);
  check_bool "nontrivial" true (C.length c > 8);
  let r = S.run timing c in
  check_bool "schedules" true (r.S.total_cycles >= r.S.critical_path_cycles)

let () =
  Alcotest.run "arith_misc"
    [
      ( "cuccaro",
        [
          Alcotest.test_case "shape" `Quick test_cuccaro_shape;
          Alcotest.test_case "serial" `Quick test_cuccaro_serial;
          Alcotest.test_case "schedules" `Quick test_cuccaro_schedules_at_cp;
        ] );
      ( "draper",
        [
          Alcotest.test_case "shape" `Quick test_draper_shape;
          Alcotest.test_case "inverse angles" `Quick test_draper_inverse_angles;
          Alcotest.test_case "parallelism" `Quick test_adders_disagree_in_parallelism;
        ] );
      ( "grover",
        [
          Alcotest.test_case "shape" `Quick test_grover_shape;
          Alcotest.test_case "marked pattern" `Quick test_grover_marked_pattern;
          Alcotest.test_case "bounds" `Quick test_grover_bounds;
          Alcotest.test_case "schedules" `Quick test_grover_schedules;
        ] );
      ( "misc",
        [
          Alcotest.test_case "ghz" `Quick test_ghz;
          Alcotest.test_case "hidden shift" `Quick test_hidden_shift;
          Alcotest.test_case "random clifford+t" `Quick test_random_clifford_t;
          Alcotest.test_case "registry" `Quick test_new_registry_families;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "adder4.qasm" `Quick test_fixture_adder;
          Alcotest.test_case "qft5.qasm" `Quick test_fixture_qft;
          Alcotest.test_case "peres.real" `Quick test_fixture_peres;
          Alcotest.test_case "hwb4.real" `Quick test_fixture_hwb4;
        ] );
    ]
