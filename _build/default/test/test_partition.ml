(* Tests for the graph bisection and grid embedding (METIS stand-in). *)

module Bisect = Qec_partition.Bisect
module Embed = Qec_partition.Embed
module K = Qec_circuit.Coupling
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* weighted graph as an assoc of ((a,b), w) *)
let graph_fns edges =
  let weight a b =
    match List.assoc_opt (min a b, max a b) edges with
    | Some w -> w
    | None -> 0
  in
  let neighbors v =
    List.filter_map
      (fun ((a, b), _) -> if a = v then Some b else if b = v then Some a else None)
      edges
  in
  (weight, neighbors)

let rng () = Qec_util.Rng.create 7

let test_bisect_sizes () =
  let weight, neighbors = graph_fns [] in
  let a, b = Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a:3 [ 0; 1; 2; 3; 4; 5; 6 ] in
  check_int "side a" 3 (List.length a);
  check_int "side b" 4 (List.length b);
  check_int "partition" 7 (List.length (List.sort_uniq compare (a @ b)))

let test_bisect_extremes () =
  let weight, neighbors = graph_fns [] in
  let a, b = Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a:0 [ 1; 2 ] in
  check_int "empty a" 0 (List.length a);
  check_int "all b" 2 (List.length b);
  let a, b = Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a:2 [ 1; 2 ] in
  check_int "all a" 2 (List.length a);
  check_int "empty b" 0 (List.length b);
  check_bool "bad size" true
    (match Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a:5 [ 1; 2 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bisect_keeps_cliques_together () =
  (* two 4-cliques joined by one weak edge: the cut must be the weak edge *)
  let clique base =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i < j then Some ((base + i, base + j), 10) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let edges = clique 0 @ clique 4 @ [ ((3, 4), 1) ] in
  let weight, neighbors = graph_fns edges in
  let a, _b =
    Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a:4
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let sorted = List.sort compare a in
  check_bool "one clique per side" true
    (sorted = [ 0; 1; 2; 3 ] || sorted = [ 4; 5; 6; 7 ])

let test_cut_weight () =
  let weight, _ = graph_fns [ ((0, 1), 3); ((1, 2), 5) ] in
  check_int "cut" 3 (Bisect.cut_weight ~weight [ 0 ] [ 1; 2 ]);
  check_int "no cut" 0 (Bisect.cut_weight ~weight [ 0 ] [ 2 ])

let test_embed_valid_placement () =
  let c = Qec_benchmarks.Qaoa.circuit 16 in
  let grid = Grid.create 4 in
  let p = Embed.layout (K.of_circuit c) grid in
  check_int "all qubits placed" 16 (Placement.num_qubits p);
  let cells = Placement.to_array p in
  check_int "distinct cells" 16
    (List.length (List.sort_uniq compare (Array.to_list cells)))

let test_embed_partial_grid () =
  (* fewer qubits than cells *)
  let c = C.create ~num_qubits:5 G.[ Cx (0, 1); Cx (2, 3); Cx (3, 4) ] in
  let grid = Grid.create 3 in
  let p = Embed.layout (K.of_circuit c) grid in
  check_int "placed" 5 (Placement.num_qubits p)

let test_embed_too_small () =
  let c = C.create ~num_qubits:5 [] in
  check_bool "grid too small" true
    (match Embed.layout (K.of_circuit c) (Grid.create 2) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_embed_locality () =
  (* strongly-coupled pairs end up close: average coupled distance should
     beat the identity layout clearly on a clustered graph *)
  let gates =
    List.concat_map
      (fun base ->
        List.init 6 (fun i -> G.Cx (base + (i mod 4), base + ((i + 1) mod 4))))
      [ 0; 4; 8; 12 ]
  in
  let c = C.create ~num_qubits:16 gates in
  let k = K.of_circuit c in
  let grid = Grid.create 4 in
  let avg_distance p =
    let total, cnt =
      List.fold_left
        (fun (acc, cnt) (a, b, w) ->
          (acc + (w * Placement.distance p a b), cnt + w))
        (0, 0) (K.edges k)
    in
    float_of_int total /. float_of_int cnt
  in
  let embedded = Embed.layout k grid in
  check_bool "coupled pairs nearby" true (avg_distance embedded <= 2.0)

let test_embed_snake_toggle () =
  let c = Qec_benchmarks.Ising.circuit ~steps:1 9 in
  let k = K.of_circuit c in
  let grid = Grid.create 3 in
  let with_snake = Embed.layout ~snake:true k grid in
  let without = Embed.layout ~snake:false k grid in
  (* snake: all coupled pairs adjacent *)
  List.iter
    (fun (a, b, _) ->
      check_int "snake adjacency" 1 (Placement.distance with_snake a b))
    (K.edges k);
  (* both are valid placements *)
  check_int "without snake still places" 9 (Placement.num_qubits without)

let test_embed_deterministic () =
  let c = Qec_benchmarks.Qaoa.circuit 16 in
  let k = K.of_circuit c in
  let grid = Grid.create 4 in
  let p1 = Embed.layout ~seed:9 k grid in
  let p2 = Embed.layout ~seed:9 k grid in
  check_bool "same seed same layout" true (Placement.equal p1 p2)

let prop_bisect_partitions =
  QCheck.Test.make ~name:"bisect always partitions exactly" ~count:200
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 0 30)
                                     (pair (int_bound 19) (int_bound 19))))
    (fun (n, raw_edges) ->
      let nodes = List.init n (fun i -> i) in
      let edges =
        List.filter_map
          (fun (a, b) ->
            if a < n && b < n && a <> b then Some ((min a b, max a b), 1)
            else None)
          raw_edges
      in
      let weight, neighbors = graph_fns edges in
      let size_a = n / 2 in
      let a, b =
        Bisect.bisect ~rng:(rng ()) ~weight ~neighbors ~size_a nodes
      in
      List.length a = size_a
      && List.length b = n - size_a
      && List.sort compare (a @ b) = nodes)

let () =
  Alcotest.run "partition"
    [
      ( "bisect",
        [
          Alcotest.test_case "sizes" `Quick test_bisect_sizes;
          Alcotest.test_case "extremes" `Quick test_bisect_extremes;
          Alcotest.test_case "cliques stay together" `Quick test_bisect_keeps_cliques_together;
          Alcotest.test_case "cut weight" `Quick test_cut_weight;
          QCheck_alcotest.to_alcotest prop_bisect_partitions;
        ] );
      ( "embed",
        [
          Alcotest.test_case "valid placement" `Quick test_embed_valid_placement;
          Alcotest.test_case "partial grid" `Quick test_embed_partial_grid;
          Alcotest.test_case "grid too small" `Quick test_embed_too_small;
          Alcotest.test_case "locality" `Quick test_embed_locality;
          Alcotest.test_case "snake toggle" `Quick test_embed_snake_toggle;
          Alcotest.test_case "deterministic" `Quick test_embed_deterministic;
        ] );
    ]
