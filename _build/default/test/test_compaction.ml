(* Tests for braiding-path compaction. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Path = Qec_lattice.Path
module Task = Autobraid.Task
module SF = Autobraid.Stack_finder
module Comp = Autobraid.Compaction
module S = Autobraid.Scheduler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

let setup placement ts =
  let grid = Placement.grid placement in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let outcome = SF.find router occ placement ts in
  (router, occ, outcome)

let all_disjoint routed =
  let rec go = function
    | [] -> true
    | (_, p) :: rest -> List.for_all (fun (_, q) -> Path.disjoint p q) rest && go rest
  in
  go routed

let endpoints_ok placement routed =
  List.for_all
    (fun ((t : Task.t), p) ->
      let ca, cb = Task.cells placement t in
      Path.connects_cells (Placement.grid placement) p ca cb)
    routed

let test_never_longer () =
  let p = placement_at 8 [ (0, 0); (3, 3); (1, 1); (4, 4); (2, 0); (6, 2) ] in
  let router, occ, outcome = setup p (tasks 3) in
  let before = Comp.total_vertices outcome.SF.routed in
  let routed = Comp.compact router occ p outcome.SF.routed in
  check_bool "not longer" true (Comp.total_vertices routed <= before);
  check_bool "disjoint" true (all_disjoint routed);
  check_bool "endpoints" true (endpoints_ok p routed)

let test_shortens_forced_detour () =
  (* route the long gate first so it detours around nothing, then force a
     detour by routing short gates, then compaction should shorten once the
     short paths settle. Construct: a detoured path exists after the stack
     finder's ordering; verify compaction finds the direct corridor. *)
  let p = placement_at 9 [ (0, 4); (8, 4); (3, 3); (4, 3); (3, 5); (4, 5) ] in
  let router, occ, outcome = setup p (tasks 3) in
  let before = Comp.total_vertices outcome.SF.routed in
  let routed = Comp.compact router occ p outcome.SF.routed in
  let after = Comp.total_vertices routed in
  check_bool "no growth" true (after <= before);
  check_int "same gates" (List.length outcome.SF.routed) (List.length routed)

let test_occupancy_consistent () =
  let p = placement_at 8 [ (0, 0); (5, 5); (1, 0); (0, 1); (7, 7); (6, 6) ] in
  let router, occ, outcome = setup p (tasks 3) in
  let routed = Comp.compact router occ p outcome.SF.routed in
  check_int "occupancy = sum of lengths" (Comp.total_vertices routed)
    (Occupancy.occupied_count occ)

let test_single_vertex_paths_untouched () =
  (* adjacent cells already share a corner: nothing to compact *)
  let p = placement_at 4 [ (0, 0); (1, 0) ] in
  let router, occ, outcome = setup p (tasks 1) in
  let routed = Comp.compact router occ p outcome.SF.routed in
  check_int "still one vertex" 1 (Comp.total_vertices routed)

let test_scheduler_compaction_option () =
  let timing = Qec_surface.Timing.make ~d:33 () in
  let c = Qec_benchmarks.Qft.circuit 25 in
  let off = S.run ~options:{ S.default_options with variant = S.Sp } timing c in
  let on =
    S.run
      ~options:{ S.default_options with variant = S.Sp; compaction = true }
      timing c
  in
  (* compaction can only help or match the round count *)
  check_bool "no slower" true (on.S.total_cycles <= off.S.total_cycles);
  check_bool "uses fewer vertices on average" true
    (on.S.avg_utilization <= off.S.avg_utilization +. 1e-9)

let test_traced_compaction_validates () =
  let timing = Qec_surface.Timing.make ~d:33 () in
  let options = { S.default_options with compaction = true } in
  let _, trace = S.run_traced ~options timing (Qec_benchmarks.Qft.circuit 16) in
  match Autobraid.Trace.validate trace with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let prop_compaction_safe =
  QCheck.Test.make ~name:"compaction keeps rounds valid" ~count:200
    QCheck.(pair (int_range 1 8)
              (list_of_size (Gen.return 16) (pair (int_bound 7) (int_bound 7))))
    (fun (k, coords) ->
      let coords = List.filteri (fun i _ -> i < 2 * k) coords in
      QCheck.assume (List.length coords = 2 * k);
      let distinct = List.sort_uniq compare coords in
      QCheck.assume (List.length distinct = 2 * k);
      let p = placement_at 8 coords in
      let router, occ, outcome = setup p (tasks k) in
      let before = Comp.total_vertices outcome.SF.routed in
      let routed = Comp.compact router occ p outcome.SF.routed in
      all_disjoint routed && endpoints_ok p routed
      && Comp.total_vertices routed <= before
      && List.length routed = List.length outcome.SF.routed)

let () =
  Alcotest.run "compaction"
    [
      ( "compaction",
        [
          Alcotest.test_case "never longer" `Quick test_never_longer;
          Alcotest.test_case "forced detour" `Quick test_shortens_forced_detour;
          Alcotest.test_case "occupancy" `Quick test_occupancy_consistent;
          Alcotest.test_case "single vertex" `Quick test_single_vertex_paths_untouched;
          Alcotest.test_case "scheduler option" `Quick test_scheduler_compaction_option;
          Alcotest.test_case "traced validates" `Quick test_traced_compaction_validates;
          QCheck_alcotest.to_alcotest prop_compaction_safe;
        ] );
    ]
