(* Tests for gate lowering: SWAP, Toffoli, MCT, and the full pipeline. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module D = Qec_circuit.Decompose

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_strip_barriers () =
  let c = C.create ~num_qubits:2 G.[ H 0; Barrier [ 0; 1 ]; Cx (0, 1) ] in
  let c' = D.strip_barriers c in
  check_int "length" 2 (C.length c');
  check_int "no barriers" 0
    (C.count_if (function G.Barrier _ -> true | _ -> false) c')

let test_swap_expansion () =
  let c = C.create ~num_qubits:2 [ G.Swap (0, 1) ] in
  let c' = D.swaps_to_cx c in
  check_int "3 gates" 3 (C.length c');
  Alcotest.(check (list string))
    "all cx" [ "cx"; "cx"; "cx" ]
    (Array.to_list (Array.map G.name (C.gates c')));
  check_bool "alternating directions" true
    (G.equal (C.gate c' 0) (G.Cx (0, 1))
    && G.equal (C.gate c' 1) (G.Cx (1, 0))
    && G.equal (C.gate c' 2) (G.Cx (0, 1)))

let test_ccx_network () =
  let c = C.create ~num_qubits:3 [ G.Ccx (0, 1, 2) ] in
  let c' = D.ccx_to_clifford_t c in
  check_int "15 gates" 15 (C.length c');
  check_int "6 CX" 6 (C.count_if (function G.Cx _ -> true | _ -> false) c');
  check_int "7 T-like" 7
    (C.count_if (function G.T _ | G.Tdg _ -> true | _ -> false) c');
  check_int "2 H" 2 (C.count_if (function G.H _ -> true | _ -> false) c')

let only_narrow c =
  C.count_if (fun g -> not (G.is_single_qubit g || G.is_two_qubit g)) c = 0

let test_mcx_free_small () =
  let gs = D.mcx_gates [ 0; 1; 2 ] 3 in
  let c = C.create ~num_qubits:4 gs in
  (* contains Ccx and 2-qubit controlled roots only *)
  check_bool "no mcx left" true
    (C.count_if (function G.Mcx _ -> true | _ -> false) c = 0);
  check_bool "nonempty" true (C.length c > 0)

let test_mcx_free_arity_errors () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Decompose.mcx_gates: use Cx/Ccx for < 3 controls")
    (fun () -> ignore (D.mcx_gates [ 0; 1 ] 2));
  Alcotest.check_raises "too many"
    (Invalid_argument
       "Decompose.mcx_gates: ancilla-free recursion capped at 8 controls")
    (fun () -> ignore (D.mcx_gates [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] 9))

let test_mcx_ladder () =
  let gs = D.mcx_gates ~ancillas:[ 10; 11 ] [ 0; 1; 2; 3 ] 4 in
  let c = C.create ~num_qubits:12 gs in
  (* k = 4 controls: 2(k-2)+1 = 5 Toffolis, no bare CX *)
  check_int "ccx count" 5
    (C.count_if (function G.Ccx _ -> true | _ -> false) c);
  check_int "cx count" 0 (C.count_if (function G.Cx _ -> true | _ -> false) c);
  (* uncompute mirrors compute *)
  let gates = C.gates c in
  check_bool "palindrome around middle" true
    (G.equal gates.(0) gates.(Array.length gates - 1))

let test_mcx_ladder_errors () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Decompose.mcx_gates: ancilla overlaps operands")
    (fun () -> ignore (D.mcx_gates ~ancillas:[ 0 ] [ 0; 1; 2 ] 3));
  Alcotest.check_raises "not enough"
    (Invalid_argument "Decompose.mcx_gates: need at least k-2 ancillas")
    (fun () -> ignore (D.mcx_gates ~ancillas:[ 9 ] [ 0; 1; 2; 3 ] 4))

let test_pipeline_output_narrow () =
  let c =
    C.create ~num_qubits:8
      G.[
          H 0;
          Barrier [ 0; 1 ];
          Swap (1, 2);
          Ccx (0, 1, 2);
          Mcx ([ 0; 1; 2; 3 ], 4);
          Measure 0;
        ]
  in
  let c' = D.to_scheduler_gates c in
  check_bool "only narrow gates" true (only_narrow c');
  check_int "no barriers" 0
    (C.count_if (function G.Barrier _ -> true | _ -> false) c');
  check_int "no swaps" 0
    (C.count_if (function G.Swap _ -> true | _ -> false) c')

let test_pipeline_idempotent () =
  let c = C.create ~num_qubits:4 G.[ H 0; Cx (0, 1); Ccx (0, 1, 2) ] in
  let once = D.to_scheduler_gates c in
  let twice = D.to_scheduler_gates once in
  check_bool "idempotent" true (C.gates once = C.gates twice)

(* The lowered circuit must touch the same set of qubits as its MCT
   source (controls, target), never others. *)
let prop_mcx_qubit_support =
  QCheck.Test.make ~name:"mcx lowering touches only its operands" ~count:50
    QCheck.(int_range 3 6)
    (fun k ->
      let controls = List.init k (fun i -> i) in
      let target = k in
      let gs = D.mcx_gates controls target in
      let touched =
        List.concat_map G.qubits gs |> List.sort_uniq compare
      in
      List.for_all (fun q -> q <= target) touched
      && List.mem target touched)

let prop_swap_preserves_two_qubit_pairs =
  QCheck.Test.make ~name:"swap lowering keeps operand pair" ~count:100
    QCheck.(pair (int_bound 9) (int_bound 9))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let c = C.create ~num_qubits:10 [ G.Swap (a, b) ] in
      let c' = D.swaps_to_cx c in
      Array.for_all
        (fun g ->
          match G.two_qubit_operands g with
          | Some (x, y) -> (x = a && y = b) || (x = b && y = a)
          | None -> false)
        (C.gates c'))

let () =
  Alcotest.run "decompose"
    [
      ( "passes",
        [
          Alcotest.test_case "strip barriers" `Quick test_strip_barriers;
          Alcotest.test_case "swap -> 3 cx" `Quick test_swap_expansion;
          Alcotest.test_case "ccx 15-gate network" `Quick test_ccx_network;
          Alcotest.test_case "mcx ancilla-free" `Quick test_mcx_free_small;
          Alcotest.test_case "mcx arity errors" `Quick test_mcx_free_arity_errors;
          Alcotest.test_case "mcx ladder" `Quick test_mcx_ladder;
          Alcotest.test_case "mcx ladder errors" `Quick test_mcx_ladder_errors;
          Alcotest.test_case "pipeline narrow" `Quick test_pipeline_output_narrow;
          Alcotest.test_case "pipeline idempotent" `Quick test_pipeline_idempotent;
          QCheck_alcotest.to_alcotest prop_mcx_qubit_support;
          QCheck_alcotest.to_alcotest prop_swap_preserves_two_qubit_pairs;
        ] );
    ]
