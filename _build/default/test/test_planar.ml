(* Tests for the planar-code (teleportation) comparison model. *)

module S = Autobraid.Scheduler
module P = Qec_planar.Teleport
module T = Qec_surface.Timing
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let test_runs_and_bounds () =
  let r = P.run timing (B.Qft.circuit 16) in
  check_bool "positive" true (r.S.total_cycles > 0);
  check_bool "CP bound" true (r.S.critical_path_cycles <= r.S.total_cycles);
  check_int "no swaps" 0 r.S.swaps_inserted

let test_teleport_round_cost () =
  (* one CX on an otherwise empty circuit: exactly one d-cycle round *)
  let c = Qec_circuit.Circuit.create ~num_qubits:2 [ Qec_circuit.Gate.Cx (0, 1) ] in
  let r = P.run timing c in
  check_int "one round" 1 r.S.rounds;
  check_int "d cycles (not 2d)" 33 r.S.total_cycles

let test_planar_faster_than_braiding_rounds () =
  (* with the same ordering machinery, teleport rounds are half a braid:
     planar total is at most the braiding (sp) total, typically ~half *)
  List.iter
    (fun c ->
      let braid = S.run ~options:{ S.default_options with variant = S.Sp } timing c in
      let tele = P.run timing c in
      check_bool
        (Qec_circuit.Circuit.name c ^ ": planar <= braiding")
        true
        (tele.S.total_cycles <= braid.S.total_cycles))
    [ B.Qft.circuit 16; B.Ising.circuit 16; B.Qaoa.circuit 16 ]

let test_stack_no_worse_than_greedy () =
  let stack = P.run timing (B.Qft.circuit 36) in
  let greedy =
    P.run
      ~options:{ P.default_options with ordering = P.Greedy_shortest }
      timing (B.Qft.circuit 36)
  in
  check_bool "stack <= greedy" true
    (stack.S.total_cycles <= greedy.S.total_cycles)

let test_physical_overhead () =
  let braid =
    Qec_surface.Resources.total_physical_qubits ~num_logical:100 ~d:33
  in
  let planar = P.physical_qubits ~num_logical:100 ~d:33 () in
  check_bool "planar costs more" true (planar > braid);
  check_int "default factor 1.5" (int_of_float (ceil (1.5 *. float_of_int braid))) planar;
  let double = P.physical_qubits ~overhead_factor:2.0 ~num_logical:100 ~d:33 () in
  check_bool "factor scales" true (double > planar)

let test_distance_for_budget () =
  let braid_budget =
    Qec_surface.Resources.total_physical_qubits ~num_logical:100 ~d:33
  in
  (match P.distance_for_budget ~num_logical:100 ~budget:braid_budget () with
  | Some d ->
    check_bool "planar affords smaller d" true (d < 33);
    check_bool "fits" true
      (P.physical_qubits ~num_logical:100 ~d () <= braid_budget);
    check_bool "next step does not fit" true
      (P.physical_qubits ~num_logical:100 ~d:(d + 2) () > braid_budget)
  | None -> Alcotest.fail "expected a distance");
  Alcotest.(check (option int))
    "tiny budget" None
    (P.distance_for_budget ~num_logical:100 ~budget:10 ())

let test_deterministic () =
  let a = P.run timing (B.Qaoa.circuit 16) in
  let b = P.run timing (B.Qaoa.circuit 16) in
  check_int "same" a.S.total_cycles b.S.total_cycles

let () =
  Alcotest.run "planar"
    [
      ( "teleport",
        [
          Alcotest.test_case "runs" `Quick test_runs_and_bounds;
          Alcotest.test_case "round cost" `Quick test_teleport_round_cost;
          Alcotest.test_case "faster rounds" `Quick test_planar_faster_than_braiding_rounds;
          Alcotest.test_case "stack order" `Quick test_stack_no_worse_than_greedy;
          Alcotest.test_case "physical overhead" `Quick test_physical_overhead;
          Alcotest.test_case "budget distance" `Quick test_distance_for_budget;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
