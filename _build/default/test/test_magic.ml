(* Tests for the magic-state factory supply model. *)

module M = Qec_magic.Factory_model
module S = Autobraid.Scheduler
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module Grid = Qec_lattice.Grid
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = Qec_surface.Timing.make ~d:33 ()

let test_factory_cells_on_boundary () =
  let grid = Grid.create 5 in
  let cells = M.factory_cells grid 4 in
  check_int "four factories" 4 (List.length cells);
  List.iter
    (fun c ->
      let x, y = Grid.cell_xy grid c in
      check_bool "on boundary" true (x = 0 || y = 0 || x = 4 || y = 4))
    cells;
  check_int "distinct" 4 (List.length (List.sort_uniq compare cells))

let test_factory_cells_small_grid () =
  let grid = Grid.create 1 in
  check_int "single cell" 1 (List.length (M.factory_cells grid 4))

let test_t_free_circuit_unaffected () =
  (* without T gates the factory model reduces to autobraid-sp *)
  let c = B.Bv.circuit 12 in
  let plain = S.run ~options:{ S.default_options with variant = S.Sp } timing c in
  let magic = M.run timing c in
  check_int "same cycles" plain.S.total_cycles magic.M.scheduler.S.total_cycles;
  check_int "no t gates" 0 magic.M.t_gates;
  check_int "no deliveries" 0 magic.M.deliveries

let t_heavy n =
  (* alternating T and CX layers *)
  let gates =
    List.concat_map
      (fun i ->
        [ G.T (i mod n); G.Cx (i mod n, (i + 1) mod n); G.Tdg ((i + 1) mod n) ])
      (List.init 20 (fun i -> i))
  in
  C.create ~name:"t_heavy" ~num_qubits:n gates

let test_t_gates_counted () =
  let r = M.run timing (t_heavy 6) in
  check_int "t gates" 40 r.M.t_gates;
  check_bool "deliveries happened" true (r.M.deliveries > 0)

let test_supply_slower_than_ideal () =
  (* the ideal-supply assumption is a lower bound *)
  let c = t_heavy 6 in
  let ideal = S.run ~options:{ S.default_options with variant = S.Sp } timing c in
  let magic = M.run timing c in
  check_bool "factories cost time" true
    (magic.M.scheduler.S.total_cycles >= ideal.S.total_cycles)

let test_more_factories_help () =
  let c = t_heavy 8 in
  let run k =
    let options = { (M.default_options ()) with M.num_factories = k } in
    (M.run ~options timing c).M.scheduler.S.total_cycles
  in
  check_bool "8 factories <= 1 factory" true (run 8 <= run 1)

let test_faster_production_helps () =
  let c = t_heavy 8 in
  let run prod =
    let options = { (M.default_options ()) with M.production_cycles = prod } in
    (M.run ~options timing c).M.scheduler.S.total_cycles
  in
  check_bool "fast production <= slow" true (run 33 <= run 3300)

let test_everything_completes () =
  let r = M.run timing (B.Grover.circuit ~iterations:1 5) in
  check_bool "finished" true (r.M.scheduler.S.total_cycles > 0);
  check_bool "cp bound" true
    (r.M.scheduler.S.critical_path_cycles <= r.M.scheduler.S.total_cycles)

let test_invalid_options () =
  let bad f =
    match M.run ~options:(f (M.default_options ())) timing (t_heavy 4) with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "factories<1" true (bad (fun o -> { o with M.num_factories = 0 }));
  check_bool "production<1" true
    (bad (fun o -> { o with M.production_cycles = 0 }));
  check_bool "capacity<1" true (bad (fun o -> { o with M.capacity = 0 }))

let test_deterministic () =
  let a = M.run timing (t_heavy 6) in
  let b = M.run timing (t_heavy 6) in
  check_int "same" a.M.scheduler.S.total_cycles b.M.scheduler.S.total_cycles

let () =
  Alcotest.run "magic"
    [
      ( "factories",
        [
          Alcotest.test_case "boundary placement" `Quick test_factory_cells_on_boundary;
          Alcotest.test_case "small grid" `Quick test_factory_cells_small_grid;
        ] );
      ( "supply model",
        [
          Alcotest.test_case "t-free unaffected" `Quick test_t_free_circuit_unaffected;
          Alcotest.test_case "t gates counted" `Quick test_t_gates_counted;
          Alcotest.test_case "slower than ideal" `Quick test_supply_slower_than_ideal;
          Alcotest.test_case "more factories help" `Quick test_more_factories_help;
          Alcotest.test_case "faster production helps" `Quick test_faster_production_helps;
          Alcotest.test_case "completes" `Quick test_everything_completes;
          Alcotest.test_case "invalid options" `Quick test_invalid_options;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
