(* Tests for initial placement and the dynamic layout optimizer, including
   the paper's Fig. 9 / Fig. 15 crossing-pairs bottleneck. *)

module Grid = Qec_lattice.Grid
module Placement = Qec_lattice.Placement
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Task = Autobraid.Task
module SF = Autobraid.Stack_finder
module LO = Autobraid.Layout_opt
module IL = Autobraid.Initial_layout
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let placement_at l coords =
  let grid = Grid.create l in
  let cells =
    Array.of_list (List.map (fun (x, y) -> Grid.cell_id grid ~x ~y) coords)
  in
  Placement.create grid ~num_qubits:(Array.length cells) ~cells

let tasks n = List.init n (fun i -> { Task.id = i; q1 = 2 * i; q2 = (2 * i) + 1 })

(* Fig. 9(a): four CX pairs on the boundary of the lattice, every straight
   line separating every other pair. On an l x l grid: pairs connect
   opposite boundary midpoints through the center, rotated. *)
let fig9_coords l =
  let m = l / 2 in
  [
    (0, m - 1); (l - 1, m) (* horizontal-ish *);
    (m, 0); (m - 1, l - 1) (* vertical-ish *);
    (0, m + 1); (l - 1, m + 1 - l + l - 2 - m + m) (* placeholder below *);
  ]

let test_fig9_unroutable () =
  (* concrete 6x6 instance of the Fig. 9 pattern: four pairs crossing at
     the center, all eight qubits on the boundary *)
  ignore fig9_coords;
  let p =
    placement_at 6
      [
        (0, 2); (5, 3) (* A0 *);
        (2, 5); (3, 0) (* A1 *);
        (0, 3); (5, 2) (* A2 *);
        (2, 0); (3, 5) (* A3 *);
      ]
  in
  let grid = Placement.grid p in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let outcome = SF.find router occ p (tasks 4) in
  check_bool "at most 3 of 4 route" true
    (List.length outcome.SF.routed <= 3);
  check_bool "at least 1 routes" true (List.length outcome.SF.routed >= 1)

let test_fig9_swaps_rescue () =
  let p =
    placement_at 6
      [
        (0, 2); (5, 3);
        (2, 5); (3, 0);
        (0, 3); (5, 2);
        (2, 0); (3, 5);
      ]
  in
  let grid = Placement.grid p in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let outcome = SF.find router occ p (tasks 4) in
  check_bool "something failed" true (outcome.SF.failed <> []);
  (* plan over the whole concurrent front, as the scheduler does *)
  let swaps = LO.plan LO.Greedy router p ~pending:(tasks 4) ~phase:0 in
  check_bool "planned at least one swap" true (swaps <> []);
  LO.apply p swaps;
  let occ2 = Occupancy.create grid in
  let outcome2 = SF.find router occ2 p (tasks 4) in
  check_bool "improved after swap layer" true
    (List.length outcome2.SF.routed > List.length outcome.SF.routed)

let test_plan_disjoint_pairs () =
  let p =
    placement_at 6
      [
        (0, 2); (5, 3);
        (2, 5); (3, 0);
        (0, 3); (5, 2);
        (2, 0); (3, 5);
      ]
  in
  let router = Router.create (Placement.grid p) in
  let swaps = LO.plan LO.Greedy router p ~pending:(tasks 4) ~phase:0 in
  let qubits = List.concat_map (fun (a, b) -> [ a; b ]) swaps in
  check_int "pairwise disjoint qubits" (List.length qubits)
    (List.length (List.sort_uniq compare qubits))

let test_apply () =
  let p = placement_at 4 [ (0, 0); (1, 0); (2, 0); (3, 0) ] in
  let c0 = Placement.cell_of_qubit p 0 and c2 = Placement.cell_of_qubit p 2 in
  LO.apply p [ (0, 2) ];
  check_int "q0 moved" c2 (Placement.cell_of_qubit p 0);
  check_int "q2 moved" c0 (Placement.cell_of_qubit p 2)

let test_total_distance () =
  let p = placement_at 4 [ (0, 0); (3, 0); (0, 1); (0, 2) ] in
  check_int "sum" 4 (LO.total_distance p (tasks 2))

let test_odd_even_reduces_distance () =
  (* one pending gate between the snake's endpoints, idle qubits between:
     odd-even transposition must walk the operands closer *)
  let p = placement_at 4 [ (0, 0); (3, 0); (1, 0); (2, 0) ] in
  let router = Router.create (Placement.grid p) in
  let pending = [ { Task.id = 0; q1 = 0; q2 = 1 } ] in
  let before = LO.total_distance p pending in
  let swaps = LO.plan LO.Odd_even router p ~pending ~phase:0 in
  let trial = Placement.copy p in
  LO.apply trial swaps;
  let after = LO.total_distance trial pending in
  check_bool "distance not increased" true (after <= before);
  check_bool "found improving swaps" true (swaps <> [] && after < before)

let test_odd_even_phase_alternates () =
  let p = placement_at 4 [ (0, 0); (3, 0); (1, 0); (2, 0) ] in
  let router = Router.create (Placement.grid p) in
  let s0 = LO.plan LO.Odd_even router p ~pending:(tasks 2) ~phase:0 in
  let s1 = LO.plan LO.Odd_even router p ~pending:(tasks 2) ~phase:1 in
  (* both parities may find swaps, but they consider different pairs *)
  check_bool "parities differ or one empty" true (s0 <> s1 || s0 = [])

let test_plan_empty_pending () =
  let p = placement_at 4 [ (0, 0); (1, 1) ] in
  let router = Router.create (Placement.grid p) in
  Alcotest.(check (list (pair int int)))
    "no pending, no swaps" []
    (LO.plan LO.Greedy router p ~pending:[] ~phase:0)

(* ------------------------------------------------------------------ *)
(* Initial layout                                                       *)

let test_initial_identity () =
  let c = Qec_benchmarks.Qft.circuit 9 in
  let g = Grid.create 3 in
  let p = IL.place ~method_:IL.Identity c g in
  check_int "q0 at cell 0" 0 (Placement.cell_of_qubit p 0);
  check_int "q8 at cell 8" 8 (Placement.cell_of_qubit p 8)

let test_initial_partitioned_compact () =
  (* two independent cliques must land in compact, separate regions *)
  let gates =
    List.concat_map
      (fun base ->
        [ G.Cx (base, base + 1); G.Cx (base, base + 2); G.Cx (base + 1, base + 3);
          G.Cx (base + 2, base + 3) ])
      [ 0; 4 ]
  in
  let c = C.create ~num_qubits:8 gates in
  let g = Grid.create 3 in
  let p = IL.place ~method_:IL.Partitioned c g in
  let spread qs =
    List.fold_left
      (fun acc a ->
        List.fold_left (fun acc b -> max acc (Placement.distance p a b)) acc qs)
      0 qs
  in
  check_bool "clique 1 compact" true (spread [ 0; 1; 2; 3 ] <= 3);
  check_bool "clique 2 compact" true (spread [ 4; 5; 6; 7 ] <= 3)

let test_initial_chain_snake () =
  (* Ising coupling (degree 2) gets the snake embedding: all coupled pairs
     adjacent *)
  let c = Qec_benchmarks.Ising.circuit ~steps:1 16 in
  let g = Grid.create 4 in
  let p = IL.place ~method_:IL.Partitioned c g in
  let k = Qec_circuit.Coupling.of_circuit c in
  List.iter
    (fun (a, b, _) ->
      check_int (Printf.sprintf "pair %d-%d adjacent" a b) 1
        (Placement.distance p a b))
    (Qec_circuit.Coupling.edges k)

let test_annealed_no_worse_census () =
  let c = Qec_benchmarks.Qft.circuit 16 in
  let g = Grid.create 4 in
  let before =
    IL.oversize_census c (IL.place ~seed:5 ~method_:IL.Partitioned c g)
  in
  let after =
    IL.oversize_census c (IL.place ~seed:5 ~method_:IL.Annealed c g)
  in
  check_bool "anneal does not increase oversize census" true (after <= before)

let test_census_zero_for_serial () =
  (* BV has no concurrent CX pairs at all: census must be 0 *)
  let c = Qec_benchmarks.Bv.circuit 16 in
  let g = Grid.create 4 in
  let p = IL.place ~method_:IL.Identity c g in
  check_int "no oversize LLGs" 0 (IL.oversize_census c p)

let test_place_deterministic () =
  let c = Qec_benchmarks.Qaoa.circuit 16 in
  let g = Grid.create 4 in
  let p1 = IL.place ~seed:3 ~method_:IL.Annealed c g in
  let p2 = IL.place ~seed:3 ~method_:IL.Annealed c g in
  check_bool "same seed, same layout" true (Placement.equal p1 p2)

let () =
  Alcotest.run "layout"
    [
      ( "fig9 bottleneck",
        [
          Alcotest.test_case "unroutable crossing pairs" `Quick test_fig9_unroutable;
          Alcotest.test_case "swaps rescue" `Quick test_fig9_swaps_rescue;
          Alcotest.test_case "swap pairs disjoint" `Quick test_plan_disjoint_pairs;
        ] );
      ( "layout optimizer",
        [
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "total distance" `Quick test_total_distance;
          Alcotest.test_case "odd-even reduces distance" `Quick test_odd_even_reduces_distance;
          Alcotest.test_case "odd-even phases" `Quick test_odd_even_phase_alternates;
          Alcotest.test_case "empty pending" `Quick test_plan_empty_pending;
        ] );
      ( "initial layout",
        [
          Alcotest.test_case "identity" `Quick test_initial_identity;
          Alcotest.test_case "partitioned compact" `Quick test_initial_partitioned_compact;
          Alcotest.test_case "chain snake" `Quick test_initial_chain_snake;
          Alcotest.test_case "anneal no worse" `Quick test_annealed_no_worse_census;
          Alcotest.test_case "serial census zero" `Quick test_census_zero_for_serial;
          Alcotest.test_case "deterministic" `Quick test_place_deterministic;
        ] );
    ]
