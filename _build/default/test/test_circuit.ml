(* Unit tests for circuit construction, validation and transforms. *)

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create () =
  let c = C.create ~name:"t" ~num_qubits:3 G.[ H 0; Cx (0, 1); T 2 ] in
  check_int "qubits" 3 (C.num_qubits c);
  check_int "length" 3 (C.length c);
  Alcotest.(check string) "name" "t" (C.name c);
  check_bool "gate 1" true (G.equal (C.gate c 1) (G.Cx (0, 1)))

let test_out_of_range () =
  Alcotest.check_raises "oob"
    (C.Invalid "gate 0 (cx): qubit q3 out of range [0,3)") (fun () ->
      ignore (C.create ~num_qubits:3 [ G.Cx (0, 3) ]))

let test_duplicate_operand () =
  Alcotest.check_raises "dup" (C.Invalid "gate 0 (cx): duplicate operand qubit")
    (fun () -> ignore (C.create ~num_qubits:3 [ G.Cx (1, 1) ]))

let test_no_qubits () =
  Alcotest.check_raises "empty" (C.Invalid "circuit x: no qubits") (fun () ->
      ignore (C.create ~name:"x" ~num_qubits:0 []))

let test_counts () =
  let c =
    C.create ~num_qubits:4 G.[ H 0; Cx (0, 1); Cz (2, 3); T 1; Barrier [ 0 ] ]
  in
  check_int "two qubit" 2 (C.two_qubit_count c);
  check_int "single" 2 (C.single_qubit_count c);
  check_int "barriers" 1
    (C.count_if (function G.Barrier _ -> true | _ -> false) c)

let test_append () =
  let a = C.create ~name:"a" ~num_qubits:2 [ G.H 0 ] in
  let b = C.create ~name:"b" ~num_qubits:2 [ G.Cx (0, 1) ] in
  let ab = C.append a b in
  check_int "length" 2 (C.length ab);
  Alcotest.(check string) "keeps first name" "a" (C.name ab);
  let c3 = C.create ~num_qubits:3 [] in
  Alcotest.check_raises "width mismatch"
    (C.Invalid "append: width mismatch (2 vs 3)") (fun () ->
      ignore (C.append a c3))

let test_map_gates () =
  let c = C.create ~num_qubits:2 G.[ H 0; Swap (0, 1) ] in
  let c' =
    C.map_gates
      (function
        | G.Swap (a, b) -> G.[ Cx (a, b); Cx (b, a); Cx (a, b) ] | g -> [ g ])
      c
  in
  check_int "expanded" 4 (C.length c');
  (* dropping gates works too *)
  let c'' = C.map_gates (function G.H _ -> [] | g -> [ g ]) c in
  check_int "dropped" 1 (C.length c'')

let test_iter_order () =
  let c = C.create ~num_qubits:2 G.[ H 0; H 1; Cx (0, 1) ] in
  let seen = ref [] in
  C.iter (fun i g -> seen := (i, G.name g) :: !seen) c;
  Alcotest.(check (list (pair int string)))
    "order"
    [ (0, "h"); (1, "h"); (2, "cx") ]
    (List.rev !seen)

let test_builder () =
  let b = C.Builder.create ~name:"built" ~num_qubits:2 () in
  C.Builder.add b (G.H 0);
  C.Builder.add_list b G.[ Cx (0, 1); T 1 ];
  check_int "builder length" 3 (C.Builder.length b);
  let c = C.Builder.finish b in
  check_int "circuit length" 3 (C.length c);
  (* builder keeps working after finish without affecting the snapshot *)
  C.Builder.add b (G.X 0);
  check_int "snapshot unchanged" 3 (C.length c);
  check_int "builder grew" 4 (C.Builder.length b)

let test_builder_validates_eagerly () =
  let b = C.Builder.create ~num_qubits:2 () in
  Alcotest.check_raises "eager"
    (C.Invalid "gate 0 (cx): qubit q5 out of range [0,2)") (fun () ->
      C.Builder.add b (G.Cx (0, 5)))

let test_with_name () =
  let c = C.create ~name:"old" ~num_qubits:1 [] in
  Alcotest.(check string) "renamed" "new" (C.name (C.with_name "new" c))

let prop_builder_equals_create =
  QCheck.Test.make ~name:"Builder.finish = create" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 4) (int_bound 4)))
    (fun pairs ->
      let gates =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (G.Cx (a, b)) else None)
          pairs
      in
      let via_create = C.create ~num_qubits:5 gates in
      let b = C.Builder.create ~num_qubits:5 () in
      List.iter (C.Builder.add b) gates;
      let via_builder = C.Builder.finish b in
      C.gates via_create = C.gates via_builder)

let () =
  Alcotest.run "circuit"
    [
      ( "circuit",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "duplicate operand" `Quick test_duplicate_operand;
          Alcotest.test_case "no qubits" `Quick test_no_qubits;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "map_gates" `Quick test_map_gates;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "with_name" `Quick test_with_name;
        ] );
      ( "builder",
        [
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "eager validation" `Quick test_builder_validates_eagerly;
          QCheck_alcotest.to_alcotest prop_builder_equals_create;
        ] );
    ]
