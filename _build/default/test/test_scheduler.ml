(* End-to-end tests of the AutoBraid scheduler invariants. *)

module S = Autobraid.Scheduler
module IL = Autobraid.Initial_layout
module T = Qec_surface.Timing
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let run ?options c = S.run ?options timing c

let test_result_accounting () =
  let r = run (B.Qft.circuit 9) in
  check_int "qubits" 9 r.S.num_qubits;
  check_int "gates" (9 + 36) r.S.num_gates;
  check_int "two-qubit" 36 r.S.num_two_qubit;
  check_int "lattice side" 3 r.S.lattice_side;
  check_bool "rounds positive" true (r.S.rounds > 0);
  check_bool "braid rounds <= rounds" true (r.S.braid_rounds <= r.S.rounds);
  check_bool "compile time recorded" true (r.S.compile_time_s >= 0.)

let test_cp_is_lower_bound () =
  List.iter
    (fun c ->
      let r = run c in
      check_bool
        (C.name c ^ ": CP <= total")
        true
        (r.S.critical_path_cycles <= r.S.total_cycles))
    [ B.Qft.circuit 12; B.Bv.circuit 16; B.Ising.circuit 12; B.Qaoa.circuit 12 ]

let test_cycles_consistent_with_rounds () =
  let r = run (B.Qft.circuit 9) in
  (* every round costs d, 2d or 6d cycles; totals must be expressible *)
  let d = 33 in
  let local_rounds = r.S.rounds - r.S.braid_rounds - r.S.swap_layers in
  check_int "cycle ledger"
    ((local_rounds * d) + (r.S.braid_rounds * 2 * d) + (r.S.swap_layers * 6 * d))
    r.S.total_cycles

let test_serial_circuits_hit_cp () =
  (* BV and CC have no CX parallelism: any sane scheduler achieves CP *)
  List.iter
    (fun c ->
      let r = run c in
      check_int (C.name c ^ " = CP") r.S.critical_path_cycles r.S.total_cycles)
    [ B.Bv.circuit 25; B.Cc.circuit 25 ]

let test_ising_hits_cp () =
  let r = run (B.Ising.circuit ~steps:4 16) in
  check_int "ising = CP" r.S.critical_path_cycles r.S.total_cycles

let test_deterministic () =
  let r1 = run (B.Qaoa.circuit 16) and r2 = run (B.Qaoa.circuit 16) in
  check_int "same cycles" r1.S.total_cycles r2.S.total_cycles;
  check_int "same rounds" r1.S.rounds r2.S.rounds

let test_accepts_wide_gates () =
  (* scheduler lowers Toffoli/MCT/barriers itself *)
  let c =
    C.create ~num_qubits:5
      G.[ H 0; Ccx (0, 1, 2); Barrier [ 0; 1 ]; Mcx ([ 0; 1; 2 ], 3); Swap (3, 4) ]
  in
  let r = run c in
  check_bool "lowered gate count grows" true (r.S.num_gates > 5);
  check_bool "schedules" true (r.S.total_cycles > 0)

let test_variant_sp_no_swaps () =
  let options = { S.default_options with variant = S.Sp } in
  let r = run ~options (B.Qft.circuit 25) in
  check_int "sp never swaps" 0 r.S.swap_layers;
  check_int "sp never inserts" 0 r.S.swaps_inserted

let test_threshold_zero_equals_sp () =
  let sp = run ~options:{ S.default_options with variant = S.Sp } (B.Qft.circuit 20) in
  let p0 =
    run ~options:{ S.default_options with variant = S.Full; threshold_p = 0. }
      (B.Qft.circuit 20)
  in
  check_int "p=0 means no optimizer" sp.S.total_cycles p0.S.total_cycles;
  check_int "no swaps at p=0" 0 p0.S.swap_layers

let test_invalid_threshold () =
  check_bool "p = 1 rejected" true
    (match
       run ~options:{ S.default_options with threshold_p = 1.0 } (B.Bv.circuit 4)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_swap_layer_accounting () =
  (* force heavy swapping with an adversarial threshold *)
  let options = { S.default_options with threshold_p = 0.9 } in
  let r = run ~options (B.Qft.circuit 36) in
  check_bool "swap layers consistent" true
    (r.S.swap_layers = 0 || r.S.swaps_inserted >= r.S.swap_layers)

let test_utilization_bounds () =
  let r = run (B.Qft.circuit 25) in
  check_bool "avg in [0,1]" true
    (r.S.avg_utilization >= 0. && r.S.avg_utilization <= 1.);
  check_bool "peak >= avg" true (r.S.peak_utilization >= r.S.avg_utilization -. 1e-9)

let test_time_conversions () =
  let r = run (B.Bv.circuit 9) in
  Alcotest.(check (float 1e-6))
    "us" (float_of_int r.S.total_cycles *. 2.2) (S.time_us timing r);
  Alcotest.(check (float 1e-6))
    "cp us"
    (float_of_int r.S.critical_path_cycles *. 2.2)
    (S.critical_path_us timing r)

let test_run_best_p () =
  let best, curve = S.run_best_p ~grid_points:[ 0.0; 0.3; 0.6 ] timing (B.Qft.circuit 16) in
  check_int "curve points" 3 (List.length curve);
  List.iter
    (fun (_, r) -> check_bool "best is min" true (best.S.total_cycles <= r.S.total_cycles))
    curve

let test_initial_methods_all_work () =
  List.iter
    (fun m ->
      let options = { S.default_options with initial = m } in
      let r = run ~options (B.Qaoa.circuit 12) in
      check_bool "schedules" true (r.S.total_cycles >= r.S.critical_path_cycles))
    [ IL.Identity; IL.Partitioned; IL.Annealed ]

let test_single_qubit_only_circuit () =
  let c = C.create ~num_qubits:4 G.[ H 0; T 1; H 2; X 3; H 0 ] in
  let r = run c in
  (* H0;T1;H2;X3 in one local round, second H0 in another: 2 rounds of d *)
  check_int "two local rounds" (2 * 33) r.S.total_cycles;
  check_int "no braid rounds" 0 r.S.braid_rounds

let test_empty_circuit () =
  let c = C.create ~num_qubits:3 [] in
  let r = run c in
  check_int "zero cycles" 0 r.S.total_cycles;
  check_int "zero rounds" 0 r.S.rounds

let test_two_qubit_lattice () =
  (* smallest interesting lattice: 2 qubits -> 2x2 grid *)
  let c = C.create ~num_qubits:2 [ G.Cx (0, 1) ] in
  let r = run c in
  check_int "side" 2 r.S.lattice_side;
  check_int "one braid round" 1 r.S.braid_rounds

(* Safety property: cycles ledger holds on random lowered circuits. *)
let random_circuit =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* gs =
      list_size (int_range 1 60)
        (let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* kind = int_range 0 2 in
         return (a, b, kind))
    in
    let gates =
      List.map
        (fun (a, b, kind) ->
          if kind = 0 || a = b then G.H a else G.Cx (a, b))
        gs
    in
    return (C.create ~num_qubits:n gates))

let prop_ledger =
  QCheck.Test.make ~name:"cycle ledger for random circuits" ~count:50
    (QCheck.make random_circuit) (fun c ->
      let r = run c in
      let d = 33 in
      let local_rounds = r.S.rounds - r.S.braid_rounds - r.S.swap_layers in
      (local_rounds * d) + (r.S.braid_rounds * 2 * d)
      + (r.S.swap_layers * 6 * d)
      = r.S.total_cycles
      && r.S.critical_path_cycles <= r.S.total_cycles)

let () =
  Alcotest.run "scheduler"
    [
      ( "invariants",
        [
          Alcotest.test_case "accounting" `Quick test_result_accounting;
          Alcotest.test_case "CP lower bound" `Quick test_cp_is_lower_bound;
          Alcotest.test_case "cycle ledger" `Quick test_cycles_consistent_with_rounds;
          Alcotest.test_case "serial = CP" `Quick test_serial_circuits_hit_cp;
          Alcotest.test_case "ising = CP" `Quick test_ising_hits_cp;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "wide gates" `Quick test_accepts_wide_gates;
          Alcotest.test_case "utilization" `Quick test_utilization_bounds;
          Alcotest.test_case "time conversions" `Quick test_time_conversions;
          QCheck_alcotest.to_alcotest prop_ledger;
        ] );
      ( "options",
        [
          Alcotest.test_case "sp no swaps" `Quick test_variant_sp_no_swaps;
          Alcotest.test_case "p=0 equals sp" `Quick test_threshold_zero_equals_sp;
          Alcotest.test_case "invalid threshold" `Quick test_invalid_threshold;
          Alcotest.test_case "swap accounting" `Quick test_swap_layer_accounting;
          Alcotest.test_case "best p sweep" `Quick test_run_best_p;
          Alcotest.test_case "initial methods" `Quick test_initial_methods_all_work;
        ] );
      ( "edges",
        [
          Alcotest.test_case "single-qubit only" `Quick test_single_qubit_only_circuit;
          Alcotest.test_case "empty" `Quick test_empty_circuit;
          Alcotest.test_case "two qubits" `Quick test_two_qubit_lattice;
        ] );
    ]
