(* Cross-library integration tests: file formats in, schedules out. *)

module S = Autobraid.Scheduler
module T = Qec_surface.Timing
module C = Qec_circuit.Circuit
module G = Qec_circuit.Gate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let timing = T.make ~d:33 ()

let write_temp suffix contents =
  let path = Filename.temp_file "autobraid_test" suffix in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let qasm_adder =
  {|OPENQASM 2.0;
include "qelib1.inc";
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
gate unmaj a,b,c { ccx a,b,c; cx c,a; cx a,b; }
x a[0];
x b;
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
majority a[1],b[2],a[2];
majority a[2],b[3],a[3];
cx a[3],cout[0];
unmaj a[2],b[3],a[3];
unmaj a[1],b[2],a[2];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
|}

let test_qasm_file_to_schedule () =
  let path = write_temp ".qasm" qasm_adder in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let c = Qec_qasm.Frontend.of_file path in
      check_int "10 qubits" 10 (C.num_qubits c);
      check_bool "gates elaborated" true (C.length c > 20);
      let r = S.run timing c in
      check_bool "scheduled" true (r.S.total_cycles > 0);
      check_bool "CP bound" true (r.S.critical_path_cycles <= r.S.total_cycles))

let revlib_sample =
  {|.version 2.0
.numvars 6
.variables a b c d e f
.begin
t1 a
t2 a b
t3 a b c
t4 a b c d
f3 d e f
v a f
v+ a f
.end
|}

let test_revlib_file_to_schedule () =
  let path = write_temp ".real" revlib_sample in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let c = Qec_revlib.Real_parser.of_file path in
      check_int "6 lines" 6 (C.num_qubits c);
      let r = S.run timing c in
      check_bool "scheduled" true (r.S.total_cycles > 0))

let test_print_reparse_same_schedule () =
  (* QASM round-trip must not change the schedule *)
  let c = Qec_benchmarks.Qft.circuit 8 in
  let r1 = S.run timing c in
  let c' = Qec_qasm.Frontend.of_string (Qec_qasm.Printer.to_string c) in
  let r2 = S.run timing c' in
  check_int "identical cycles" r1.S.total_cycles r2.S.total_cycles;
  check_int "identical rounds" r1.S.rounds r2.S.rounds

let test_registry_roundtrip_schedules () =
  (* every registry family instantiates and schedules at a small size *)
  List.iter
    (fun (e : Qec_benchmarks.Registry.entry) ->
      let n = if e.name = "bwt" then 15 else if e.name = "shor" then 19 else 12 in
      let c = e.sized n in
      let r = S.run timing c in
      check_bool (e.name ^ " schedules") true
        (r.S.total_cycles >= r.S.critical_path_cycles))
    Qec_benchmarks.Registry.families

let test_building_block_schedules () =
  let c = Qec_benchmarks.Building_blocks.by_name "4gt11_8" in
  let r = S.run timing c in
  let b = Gp_baseline.run timing c in
  check_bool "auto <= base" true (r.S.total_cycles <= b.S.total_cycles)

let test_paper_magnitude_bv100 () =
  (* Table 2: BV-100 executes in 15.2Kus for both autobraid and CP *)
  let r = S.run timing (Qec_benchmarks.Bv.circuit 100) in
  let us = S.time_us timing r in
  check_bool "14-18 Kus" true (us > 13000. && us < 19000.);
  check_int "equals CP" r.S.critical_path_cycles r.S.total_cycles

let test_mixed_format_equivalence () =
  (* the same Toffoli expressed via QASM and via RevLib schedules the same *)
  let qasm =
    Qec_qasm.Frontend.of_string
      "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];"
  in
  let real =
    Qec_revlib.Real_parser.of_string ".numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n"
  in
  let rq = S.run timing qasm and rr = S.run timing real in
  check_int "same gates" rq.S.num_gates rr.S.num_gates;
  check_int "same cycles" rq.S.total_cycles rr.S.total_cycles

let test_error_propagation () =
  check_bool "qasm syntax error" true
    (match Qec_qasm.Frontend.of_string "OPENQASM 2.0; qreg q[2" with
    | exception Qec_qasm.Parser.Error _ -> true
    | _ -> false);
  check_bool "missing file" true
    (match Qec_qasm.Frontend.of_file "/nonexistent/foo.qasm" with
    | exception Sys_error _ -> true
    | _ -> false)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "qasm -> schedule" `Quick test_qasm_file_to_schedule;
          Alcotest.test_case "revlib -> schedule" `Quick test_revlib_file_to_schedule;
          Alcotest.test_case "print/reparse stable" `Quick test_print_reparse_same_schedule;
          Alcotest.test_case "registry families" `Slow test_registry_roundtrip_schedules;
          Alcotest.test_case "building block" `Quick test_building_block_schedules;
          Alcotest.test_case "bv100 magnitude" `Quick test_paper_magnitude_bv100;
          Alcotest.test_case "format equivalence" `Quick test_mixed_format_equivalence;
          Alcotest.test_case "errors propagate" `Quick test_error_propagation;
        ] );
    ]
