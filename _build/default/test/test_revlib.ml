(* Tests for the RevLib .real parser. *)

module R = Qec_revlib.Real_parser
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample =
  {|# a tiny reversible circuit
.version 2.0
.numvars 3
.variables a b c
.constants --0
.garbage ---
.begin
t1 a
t2 a b
t3 a b c
.end
|}

let test_parse_sample () =
  let c = R.of_string ~name:"sample" sample in
  check_int "qubits" 3 (C.num_qubits c);
  check_int "gates" 3 (C.length c);
  check_bool "not" true (G.equal (C.gate c 0) (G.X 0));
  check_bool "cnot" true (G.equal (C.gate c 1) (G.Cx (0, 1)));
  check_bool "toffoli" true (G.equal (C.gate c 2) (G.Ccx (0, 1, 2)))

let test_mct_wide () =
  let src = ".numvars 5\n.variables a b c d e\n.begin\nt5 a b c d e\n.end\n" in
  let c = R.of_string src in
  check_int "one gate" 1 (C.length c);
  check_bool "mcx" true (G.equal (C.gate c 0) (G.Mcx ([ 0; 1; 2; 3 ], 4)))

let test_negative_control () =
  let src = ".numvars 3\n.variables a b c\n.begin\nt3 -a b c\n.end\n" in
  let c = R.of_string src in
  (* X a; CCX a b c; X a *)
  check_int "3 gates" 3 (C.length c);
  check_bool "x before" true (G.equal (C.gate c 0) (G.X 0));
  check_bool "ccx" true (G.equal (C.gate c 1) (G.Ccx (0, 1, 2)));
  check_bool "x after" true (G.equal (C.gate c 2) (G.X 0))

let test_fredkin () =
  let src = ".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n" in
  let c = R.of_string src in
  (* controlled swap = 3 Toffoli-like gates *)
  check_int "3 gates" 3 (C.length c);
  check_int "all ccx" 3 (C.count_if (function G.Ccx _ -> true | _ -> false) c)

let test_fredkin_plain_swap () =
  let src = ".numvars 2\n.variables a b\n.begin\nf2 a b\n.end\n" in
  let c = R.of_string src in
  check_int "3 cx" 3 (C.count_if (function G.Cx _ -> true | _ -> false) c)

let test_v_gates () =
  let src = ".numvars 2\n.variables a b\n.begin\nv a b\nv+ a b\n.end\n" in
  let c = R.of_string src in
  check_int "6 gates (2 x H.CP.H)" 6 (C.length c);
  check_int "2 cphase" 2
    (C.count_if (function G.Cphase _ -> true | _ -> false) c);
  (* dagger has opposite angle *)
  let angles =
    Array.to_list (C.gates c)
    |> List.filter_map (function G.Cphase (_, _, a) -> Some a | _ -> None)
  in
  match angles with
  | [ a1; a2 ] -> Alcotest.(check (float 1e-9)) "opposite" 0. (a1 +. a2)
  | _ -> Alcotest.fail "expected two angles"

let test_numeric_variables () =
  (* files without .variables can address lines by index *)
  let src = ".numvars 3\n.begin\nt2 0 2\n.end\n" in
  let c = R.of_string src in
  check_bool "cx by index" true (G.equal (C.gate c 0) (G.Cx (0, 2)))

let test_inline_comments () =
  let src = ".numvars 2\n.variables a b\n.begin\nt2 a b # comment\n.end\n" in
  check_int "1 gate" 1 (C.length (R.of_string src))

let test_content_after_end_ignored () =
  let src = ".numvars 2\n.variables a b\n.begin\nt1 a\n.end\nt1 b\n" in
  check_int "1 gate" 1 (C.length (R.of_string src))

let test_errors () =
  let raises src =
    match R.of_string src with
    | exception R.Error _ -> true
    | _ -> false
  in
  check_bool "unknown variable" true
    (raises ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n");
  check_bool "arity mismatch" true
    (raises ".numvars 3\n.variables a b c\n.begin\nt3 a b\n.end\n");
  check_bool "unknown gate" true
    (raises ".numvars 2\n.variables a b\n.begin\nq2 a b\n.end\n");
  check_bool "gate outside body" true
    (raises ".numvars 2\n.variables a b\nt2 a b\n.begin\n.end\n");
  check_bool "variables mismatch" true
    (raises ".numvars 3\n.variables a b\n.begin\n.end\n");
  check_bool "no numvars" true (raises ".variables a b\n")

let test_error_line_numbers () =
  match R.of_string ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n" with
  | exception R.Error { line; _ } -> check_int "line 4" 4 line
  | _ -> Alcotest.fail "expected error"

let test_lowering_composes () =
  (* a parsed file lowers to scheduler gates without error *)
  let src = ".numvars 5\n.variables a b c d e\n.begin\nt5 a b c d e\nt3 a b c\nf3 c d e\n.end\n" in
  let c = Qec_circuit.Decompose.to_scheduler_gates (R.of_string src) in
  check_bool "narrow only" true
    (C.count_if (fun g -> not (G.is_single_qubit g || G.is_two_qubit g)) c = 0)


(* Robustness: .real parsing either succeeds or raises R.Error. *)
let real_ish_gen =
  QCheck.Gen.(
    let token =
      oneofl
        [ ".version"; ".numvars"; "3"; ".variables"; "a"; "b"; "c"; ".begin";
          ".end"; "t1"; "t2"; "t3"; "f3"; "v"; "v+"; "-a"; "#x"; "2.0"; "q9" ]
    in
    map
      (fun lines -> String.concat "\n" (List.map (String.concat " ") lines))
      (list_size (int_range 0 15) (list_size (int_range 0 5) token)))

let prop_fuzz_real =
  QCheck.Test.make ~name:".real parser never crashes" ~count:500
    (QCheck.make real_ish_gen) (fun src ->
      match R.of_string src with
      | _ -> true
      | exception R.Error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "revlib"
    [
      ( "real parser",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "wide mct" `Quick test_mct_wide;
          Alcotest.test_case "negative control" `Quick test_negative_control;
          Alcotest.test_case "fredkin" `Quick test_fredkin;
          Alcotest.test_case "fredkin swap" `Quick test_fredkin_plain_swap;
          Alcotest.test_case "v gates" `Quick test_v_gates;
          Alcotest.test_case "numeric variables" `Quick test_numeric_variables;
          Alcotest.test_case "inline comments" `Quick test_inline_comments;
          Alcotest.test_case "after .end" `Quick test_content_after_end_ignored;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error lines" `Quick test_error_line_numbers;
          Alcotest.test_case "lowering composes" `Quick test_lowering_composes;
          QCheck_alcotest.to_alcotest prop_fuzz_real;
        ] );
    ]
