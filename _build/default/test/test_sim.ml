(* Semantic validation via the state-vector simulator: gate algebra,
   decomposition correctness, optimizer soundness, and algorithm-level
   checks of the benchmark generators. *)

module Sim = Qec_sim.Statevector
module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module D = Qec_circuit.Decompose
module B = Qec_benchmarks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close = Alcotest.(check (float 1e-9))

let circ n gates = C.create ~num_qubits:n gates

(* ------------------------------------------------------------------ *)
(* Gate algebra                                                         *)

let test_basic_states () =
  let s = Sim.init 2 in
  check_close "starts in |00>" 1. (Sim.probability s 0);
  check_close "normalized" 1. (Sim.norm s);
  let s = Sim.of_basis 2 3 in
  check_close "|11>" 1. (Sim.probability s 3)

let test_x_flips () =
  let s = Sim.run (circ 2 [ G.X 1 ]) in
  check_close "|10>" 1. (Sim.probability s 2)

let test_h_superposes () =
  let s = Sim.run (circ 1 [ G.H 0 ]) in
  check_close "p0" 0.5 (Sim.probability s 0);
  check_close "p1" 0.5 (Sim.probability s 1)

let test_bell_state () =
  let s = Sim.run (circ 2 G.[ H 0; Cx (0, 1) ]) in
  check_close "p00" 0.5 (Sim.probability s 0);
  check_close "p11" 0.5 (Sim.probability s 3);
  check_close "p01" 0. (Sim.probability s 1)

let test_involutions () =
  List.iter
    (fun g ->
      check_bool (G.name g ^ " self-inverse") true
        (Sim.circuits_equivalent (circ 3 [ g; g ]) (circ 3 [])))
    G.[ H 0; X 1; Y 2; Z 0; Cx (0, 1); Cz (1, 2); Swap (0, 2); Ccx (0, 1, 2) ]

let test_adjoint_pairs () =
  List.iter
    (fun (a, b) ->
      check_bool (G.name a ^ " adjoint") true
        (Sim.circuits_equivalent (circ 2 [ a; b ]) (circ 2 [])))
    G.[ (S 0, Sdg 0); (T 1, Tdg 1); (Rz (0, 0.7), Rz (0, -0.7));
        (Rx (1, 1.1), Rx (1, -1.1)); (Cphase (0, 1, 0.4), Cphase (0, 1, -0.4)) ]

let test_gate_identities () =
  (* S = T^2, Z = S^2, HZH = X, CZ symmetric *)
  check_bool "T^2 = S" true
    (Sim.circuits_equivalent (circ 1 G.[ T 0; T 0 ]) (circ 1 [ G.S 0 ]));
  check_bool "S^2 = Z" true
    (Sim.circuits_equivalent (circ 1 G.[ S 0; S 0 ]) (circ 1 [ G.Z 0 ]));
  check_bool "HZH = X" true
    (Sim.circuits_equivalent (circ 1 G.[ H 0; Z 0; H 0 ]) (circ 1 [ G.X 0 ]));
  check_bool "CZ symmetric" true
    (Sim.circuits_equivalent (circ 2 [ G.Cz (0, 1) ]) (circ 2 [ G.Cz (1, 0) ]));
  check_bool "H Cz H = Cx" true
    (Sim.circuits_equivalent
       (circ 2 G.[ H 1; Cz (0, 1); H 1 ])
       (circ 2 [ G.Cx (0, 1) ]))

let test_u3_specials () =
  (* u3(pi/2, 0, pi) = H up to global phase *)
  check_bool "u3 H" true
    (Sim.circuits_equivalent
       (circ 1 [ G.U3 (0, Float.pi /. 2., 0., Float.pi) ])
       (circ 1 [ G.H 0 ]));
  (* u3(pi, 0, pi) = X *)
  check_bool "u3 X" true
    (Sim.circuits_equivalent
       (circ 1 [ G.U3 (0, Float.pi, 0., Float.pi) ])
       (circ 1 [ G.X 0 ]))

(* ------------------------------------------------------------------ *)
(* Decomposition correctness                                            *)

let test_swap_decomposition () =
  let swap = circ 3 [ G.Swap (0, 2) ] in
  check_bool "swap = 3 cx" true
    (Sim.circuits_equivalent (D.swaps_to_cx swap) swap)

let test_ccx_decomposition () =
  let ccx = circ 3 [ G.Ccx (0, 1, 2) ] in
  check_bool "15-gate network" true
    (Sim.circuits_equivalent (D.ccx_to_clifford_t ccx) ccx);
  (* other operand orders too *)
  let ccx = circ 3 [ G.Ccx (2, 0, 1) ] in
  check_bool "permuted operands" true
    (Sim.circuits_equivalent (D.ccx_to_clifford_t ccx) ccx)

let test_mcx_ladder_semantics () =
  (* The ancilla ladder equals C^3X on the clean-ancilla subspace (like
     every ancilla-assisted decomposition): for every basis input with
     ancillas |00>, outputs must agree and the ancillas must return to 0.
     (Full unitary equality does NOT hold — dirty ancillas change the
     temporary AND values — which the simulator correctly detects.) *)
  let mcx = circ 6 [ G.Mcx ([ 0; 1; 2 ], 3) ] in
  let ladder = circ 6 (D.mcx_gates ~ancillas:[ 4; 5 ] [ 0; 1; 2 ] 3) in
  for k = 0 to 15 do
    (* inputs over qubits 0..3 only; ancillas 4,5 start clean *)
    let s_mcx = Sim.run ~initial:(Sim.of_basis 6 k) mcx in
    let s_lad = Sim.run ~initial:(Sim.of_basis 6 k) ladder in
    check_bool
      (Printf.sprintf "input %d agrees" k)
      true
      (Sim.equal_up_to_phase s_mcx s_lad);
    (* ancillas restored: no support on states with bit 4 or 5 set *)
    let dirty = ref 0. in
    Array.iteri
      (fun i p -> if i land 0b110000 <> 0 then dirty := !dirty +. p)
      (Sim.probabilities s_lad);
    check_bool "ancillas clean" true (!dirty < 1e-12)
  done

let test_mcx_free_semantics () =
  let mcx = circ 4 [ G.Mcx ([ 0; 1; 2 ], 3) ] in
  let free = circ 4 (D.mcx_gates [ 0; 1; 2 ] 3) in
  check_bool "ancilla-free = mcx" true (Sim.circuits_equivalent free mcx)

let test_full_lowering_semantics () =
  let c =
    circ 5 G.[ H 0; Ccx (0, 1, 2); Swap (2, 3); T 4; Cx (3, 4); Ccx (4, 3, 0) ]
  in
  check_bool "to_scheduler_gates preserves unitary" true
    (Sim.circuits_equivalent (D.to_scheduler_gates c) c)

(* ------------------------------------------------------------------ *)
(* Optimizer soundness                                                  *)

let test_optimizer_preserves_unitary () =
  let c =
    circ 4
      G.[
          H 0; H 0; T 1; Tdg 1; Cx (0, 1); Cx (0, 1); Rz (2, 0.4); Rz (2, 0.3);
          Cx (1, 2); S 3; Sdg 3; Cx (1, 2); H 2;
        ]
  in
  let out = Qec_circuit.Optimize.peephole_circuit c in
  check_bool "smaller" true (C.length out < C.length c);
  check_bool "same unitary" true (Sim.circuits_equivalent out c)

let optimizer_gate_gen =
  QCheck.Gen.(
    let q = int_range 0 3 in
    let angle = map (fun i -> float_of_int (i - 4) /. 4.) (int_range 0 8) in
    frequency
      [
        (3, map (fun a -> G.H a) q);
        (2, map (fun a -> G.T a) q);
        (2, map (fun a -> G.Tdg a) q);
        (2, map2 (fun a x -> G.Rz (a, x)) q angle);
        (2, map (fun a -> G.S a) q);
        (3, map2 (fun a b -> G.Cx (a, b)) q q);
      ])

let prop_optimizer_sound =
  QCheck.Test.make ~name:"peephole preserves the unitary" ~count:150
    QCheck.(make Gen.(list_size (int_range 0 25) optimizer_gate_gen))
    (fun gs ->
      let gs =
        List.filter
          (fun g ->
            let qs = G.qubits g in
            List.length (List.sort_uniq compare qs) = List.length qs)
          gs
      in
      let c = circ 4 gs in
      Sim.circuits_equivalent (Qec_circuit.Optimize.peephole_circuit c) c)

(* ------------------------------------------------------------------ *)
(* Frontend round trips preserve semantics                              *)

let test_qasm_roundtrip_semantics () =
  let c =
    circ 3
      G.[ H 0; Cx (0, 1); T 2; Cphase (1, 2, 0.5); Swap (0, 2); Rz (1, -0.7) ]
  in
  let c' = Qec_qasm.Frontend.of_string (Qec_qasm.Printer.to_string c) in
  check_bool "round trip equivalent" true (Sim.circuits_equivalent c c')

(* ------------------------------------------------------------------ *)
(* Algorithm-level checks of the generators                             *)

let test_bv_recovers_secret () =
  (* measure-free BV prefix: data qubits must end in the secret pattern;
     ancilla needs |-> preparation which our generator does via H on |0>,
     so apply the textbook X on the ancilla first. *)
  let n = 6 in
  let secret = [| true; false; true; true; false |] in
  let bv = B.Bv.circuit ~secret n in
  let prep = circ n [ G.X (n - 1) ] in
  let s = Sim.run ~initial:(Sim.run prep) bv in
  let outcome = Sim.most_likely s in
  Array.iteri
    (fun i bit ->
      check_bool
        (Printf.sprintf "bit %d" i)
        bit
        (outcome land (1 lsl i) <> 0))
    secret

let test_ghz_state () =
  let s = Sim.run (B.Misc_circuits.ghz 4) in
  check_close "p(0000)" 0.5 (Sim.probability s 0);
  check_close "p(1111)" 0.5 (Sim.probability s 15);
  let star = Sim.run (B.Misc_circuits.ghz_star 4) in
  check_bool "chain and star agree" true (Sim.equal_up_to_phase s star)

let test_qft_uniform_from_zero () =
  (* QFT|0> is the uniform superposition *)
  let n = 4 in
  let s = Sim.run (B.Qft.circuit n) in
  Array.iteri
    (fun _ p -> check_bool "uniform" true (abs_float (p -. (1. /. 16.)) < 1e-9))
    (Sim.probabilities s)

let test_qft_inverse_is_identity () =
  (* QFT then its reverse-conjugate is the identity; build the inverse by
     reversing the gate list and negating phases *)
  let n = 4 in
  let fwd = B.Qft.circuit n in
  let inv_gates =
    Array.to_list (C.gates fwd)
    |> List.rev_map (function
         | G.Cphase (a, b, t) -> G.Cphase (a, b, -.t)
         | g -> g)
  in
  let both = C.append fwd (circ n inv_gates) in
  check_bool "QFT . QFT^-1 = I" true
    (Sim.circuits_equivalent both (circ n []))

let test_grover_amplifies_marked () =
  let n = 4 in
  let marked = 0b1010 in
  let c = B.Grover.circuit ~iterations:3 ~marked n in
  let s = Sim.run c in
  (* ancillas are above bit n-1 and must be |0>; the most likely outcome's
     low n bits must be the marked state *)
  let outcome = Sim.most_likely s in
  check_int "marked found" marked (outcome land ((1 lsl n) - 1));
  check_bool "amplified well above uniform" true
    (Sim.probability s outcome > 0.5)

let test_cuccaro_adds () =
  (* prepare a=5, b=3 (cin=0): after the adder b must hold 5+3=8 mod 16,
     cout the carry-out. Layout: cin=0, b_i = 1+2i, a_i = 2+2i, cout=9. *)
  let bits = 4 in
  let a_val = 5 and b_val = 3 in
  let prep =
    List.concat
      (List.init bits (fun i ->
           (if a_val land (1 lsl i) <> 0 then [ G.X (2 + (2 * i)) ] else [])
           @ if b_val land (1 lsl i) <> 0 then [ G.X (1 + (2 * i)) ] else []))
  in
  let n = B.Arith.cuccaro_num_qubits ~bits in
  let s = Sim.run ~initial:(Sim.run (circ n prep)) (B.Arith.cuccaro_adder bits) in
  let outcome = Sim.most_likely s in
  let b_out =
    List.fold_left
      (fun acc i ->
        if outcome land (1 lsl (1 + (2 * i))) <> 0 then acc lor (1 lsl i)
        else acc)
      0
      (List.init bits (fun i -> i))
  in
  let cout = if outcome land (1 lsl (n - 1)) <> 0 then 1 else 0 in
  check_int "sum" ((a_val + b_val) land 15) b_out;
  check_int "carry" ((a_val + b_val) lsr 4) cout;
  (* a register must be restored *)
  let a_out =
    List.fold_left
      (fun acc i ->
        if outcome land (1 lsl (2 + (2 * i))) <> 0 then acc lor (1 lsl i)
        else acc)
      0
      (List.init bits (fun i -> i))
  in
  check_int "a preserved" a_val a_out

let test_hidden_shift_finds_shift () =
  let n = 4 in
  let shift = 0b0110 in
  let s = Sim.run (B.Misc_circuits.hidden_shift ~shift n) in
  check_int "recovers shift" shift (Sim.most_likely s)

(* appended: QPE semantic check *)

let test_draper_adds () =
  (* Draper adder: b += a (mod 2^bits) for EVERY computational-basis input
     pair. a in bits 0..2, b in bits 3..5. *)
  let bits = 3 in
  let n = B.Arith.draper_num_qubits ~bits in
  let adder = B.Arith.draper_adder bits in
  for a_val = 0 to 7 do
    for b_val = 0 to 7 do
      let s =
        Sim.run ~initial:(Sim.of_basis n (a_val lor (b_val lsl bits))) adder
      in
      let outcome = Sim.most_likely s in
      check_bool "deterministic" true (Sim.probability s outcome > 0.999);
      check_int
        (Printf.sprintf "a preserved (%d,%d)" a_val b_val)
        a_val (outcome land 0b111);
      check_int
        (Printf.sprintf "%d + %d mod 8" a_val b_val)
        ((a_val + b_val) land 7)
        ((outcome lsr 3) land 0b111)
    done
  done

let test_mcx_sizes_semantics () =
  (* ancilla-free recursion for 4 and 5 controls against the reference *)
  List.iter
    (fun k ->
      let n = k + 1 in
      let controls = List.init k (fun i -> i) in
      let mcx = circ n [ G.Mcx (controls, k) ] in
      let free = circ n (D.mcx_gates controls k) in
      check_bool
        (Printf.sprintf "k=%d ancilla-free" k)
        true
        (Sim.circuits_equivalent free mcx))
    [ 4; 5 ]

let test_shor_structure_sane () =
  (* not a full factoring check (too large): the exponent register must be
     in uniform superposition right after the H layer *)
  let c = B.Shor.circuit ~multipliers:1 ~bits:2 () in
  let s = Sim.run c in
  check_bool "normalized" true (abs_float (Sim.norm s -. 1.) < 1e-9)

let test_qpe_recovers_phase () =
  (* exact case: phase = 3/8 with 3 counting bits -> outcome 3 *)
  let c = B.Qpe.circuit ~phase:0.375 ~precision:3 () in
  let s = Sim.run c in
  let outcome = Sim.most_likely s in
  let counting = outcome land 0b111 in
  check_int "counting register reads 3" 3 counting;
  check_close "exact phase is certain" 1.
    (Sim.probability s (counting lor (1 lsl 3)));
  (* inexact case: 1/3 with 4 bits -> most likely round(16/3) = 5 *)
  let c = B.Qpe.circuit ~phase:(1. /. 3.) ~precision:4 () in
  let s = Sim.run c in
  check_int "best 4-bit estimate of 1/3" 5 (Sim.most_likely s land 0b1111)

let () =
  Alcotest.run "sim"
    [
      ( "gates",
        [
          Alcotest.test_case "basic states" `Quick test_basic_states;
          Alcotest.test_case "x" `Quick test_x_flips;
          Alcotest.test_case "h" `Quick test_h_superposes;
          Alcotest.test_case "bell" `Quick test_bell_state;
          Alcotest.test_case "involutions" `Quick test_involutions;
          Alcotest.test_case "adjoints" `Quick test_adjoint_pairs;
          Alcotest.test_case "identities" `Quick test_gate_identities;
          Alcotest.test_case "u3 specials" `Quick test_u3_specials;
        ] );
      ( "decompositions",
        [
          Alcotest.test_case "swap" `Quick test_swap_decomposition;
          Alcotest.test_case "ccx" `Quick test_ccx_decomposition;
          Alcotest.test_case "mcx ladder" `Quick test_mcx_ladder_semantics;
          Alcotest.test_case "mcx ancilla-free" `Quick test_mcx_free_semantics;
          Alcotest.test_case "full lowering" `Quick test_full_lowering_semantics;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "preserves unitary" `Quick test_optimizer_preserves_unitary;
          QCheck_alcotest.to_alcotest prop_optimizer_sound;
        ] );
      ( "frontends",
        [ Alcotest.test_case "qasm round trip" `Quick test_qasm_roundtrip_semantics ] );
      ( "algorithms",
        [
          Alcotest.test_case "bv secret" `Quick test_bv_recovers_secret;
          Alcotest.test_case "ghz" `Quick test_ghz_state;
          Alcotest.test_case "qft uniform" `Quick test_qft_uniform_from_zero;
          Alcotest.test_case "qft inverse" `Quick test_qft_inverse_is_identity;
          Alcotest.test_case "grover" `Quick test_grover_amplifies_marked;
          Alcotest.test_case "cuccaro adds" `Quick test_cuccaro_adds;
          Alcotest.test_case "hidden shift" `Quick test_hidden_shift_finds_shift;
          Alcotest.test_case "qpe phase" `Quick test_qpe_recovers_phase;
          Alcotest.test_case "draper adds" `Quick test_draper_adds;
          Alcotest.test_case "mcx sizes" `Quick test_mcx_sizes_semantics;
          Alcotest.test_case "shor sane" `Quick test_shor_structure_sane;
        ] );
    ]
