type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tableprint.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        let _, align = List.nth t.headers i in
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf (if i = ncols - 1 then " |" else " | "))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Buffer.add_string buf "|";
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_string buf "|")
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells (List.map fst t.headers);
  emit_rule ();
  List.iter
    (function Cells c -> emit_cells c | Separator -> emit_rule ())
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let si_cell v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2fK" (v /. 1e3)
  else Printf.sprintf "%.0f" v
