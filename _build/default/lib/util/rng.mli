(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64) used everywhere randomness is
    needed — benchmark-circuit generation, simulated annealing, qcheck
    fixtures — so that every experiment in the repository is reproducible
    from a seed. The global OCaml [Random] state is never used by the
    libraries. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** Independent copy sharing no mutable state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Shuffled copy of a list. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)], in random order. Raises [Invalid_argument] if [k > n] or
    [k < 0]. *)
