(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Chosen because it is tiny, passes BigCrush,
   and supports cheap splitting for independent sub-streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

(* Mask to 62 bits so results stay non-negative OCaml ints on 64-bit. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: only the first k slots need shuffling. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)
