let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

exception Worker_failure of exn

let map ?domains f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = List.length xs in
  if n <= 1 || domains <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f input.(i) with
          | y -> output.(i) <- Some (Ok y)
          | exception e -> output.(i) <- Some (Error e));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list output
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise (Worker_failure e)
         | None -> assert false)
  end
