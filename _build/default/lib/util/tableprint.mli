(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables comparable to the paper's
    Tables 1 and 2 when printed to a terminal or captured to a file. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** A table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity differs from the
    header arity. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** The whole table as a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val float_cell : ?digits:int -> float -> string
(** Fixed-point formatting helper ([digits] defaults to 2). *)

val si_cell : float -> string
(** Human-scaled formatting with K/M/G suffixes, e.g. [1.34M] — the style
    the paper uses for gate counts and times. *)
