lib/util/parallel.mli:
