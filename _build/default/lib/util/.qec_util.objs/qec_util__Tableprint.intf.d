lib/util/tableprint.mli:
