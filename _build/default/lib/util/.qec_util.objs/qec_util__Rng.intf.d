lib/util/rng.mli:
