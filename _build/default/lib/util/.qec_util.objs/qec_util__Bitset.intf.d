lib/util/bitset.mli:
