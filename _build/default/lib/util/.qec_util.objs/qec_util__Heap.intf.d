lib/util/heap.mli:
