lib/util/stats.mli:
