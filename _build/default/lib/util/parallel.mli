(** Simple fork-join parallelism over OCaml 5 domains.

    Used to spread independent scheduler runs (e.g. the p-threshold sweep)
    across cores. No work stealing, no nesting — callers pass pure-ish
    functions (the scheduler mutates only per-run state), and results come
    back in input order. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element, using up to [domains]
    additional domains (default: [Domain.recommended_domain_count () - 1],
    at least 1). Falls back to plain [List.map] for lists of length <= 1
    or when [domains <= 1]. Exceptions raised by [f] are re-raised in the
    caller. Results are in input order. *)

val default_domains : unit -> int
(** The default worker count described above. *)
