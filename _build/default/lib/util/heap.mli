(** Binary min-heap over integer priorities.

    Used as the open list of the A* router, where priorities are f-scores.
    Ties are broken by insertion order (FIFO), which keeps A* expansions
    deterministic across runs. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is an initial size hint. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> unit
(** Insert an element with the given priority. *)

val pop_min : 'a t -> 'a option
(** Remove and return an element with the smallest priority, or [None] if
    the heap is empty. Among equal priorities, the earliest-pushed element
    is returned first. *)

val peek_min : 'a t -> 'a option
(** Smallest-priority element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements (keeps the backing storage). *)
