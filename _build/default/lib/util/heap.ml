(* Array-backed binary min-heap. Each node stores (priority, seq, value);
   seq is a monotonically increasing stamp that makes equal-priority pops
   FIFO and therefore deterministic. *)

type 'a node = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a node array;
  mutable size : int;
  mutable stamp : int;
}

let create ?(capacity = 16) () =
  { data = [||]; size = 0; stamp = capacity * 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t node =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap node in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority value =
  let node = { prio = priority; seq = t.stamp; value } in
  t.stamp <- t.stamp + 1;
  grow t node;
  t.data.(t.size) <- node;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top.value
  end

let peek_min t = if t.size = 0 then None else Some t.data.(0).value

let clear t =
  t.size <- 0;
  t.stamp <- 0
