(** Disjoint-set forest with union by rank and path compression.

    Used for LLG (local parallel group) decomposition: CX gates whose
    bounding boxes transitively overlap are merged into one group. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the two elements' sets (no-op if already together). *)

val same : t -> int -> int -> bool
(** Whether two elements are in the same set. *)

val count : t -> int
(** Number of distinct sets. *)

val groups : t -> int list array
(** All sets as lists of members; the array is indexed arbitrarily but
    deterministically (by ascending representative), and each list is in
    ascending element order. *)
