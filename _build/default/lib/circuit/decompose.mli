(** Gate-level lowering passes.

    The braiding schedulers accept only single-qubit gates and two-qubit
    gates (each two-qubit gate = one braid). These passes lower everything
    else. Decompositions preserve the two-qubit {e interaction structure}
    that communication scheduling depends on; global phases and the exact
    choice of controlled-root emulation are irrelevant to routing and are
    chosen for gate-count economy:

    - [Swap] → 3 [Cx] (the paper's Fig. 11);
    - [Ccx] → the standard 15-gate Clifford+T network (6 CX, 7 T/T†, 2 H);
    - [Mcx] with k ≥ 3 controls → either a Toffoli ladder using caller-
      supplied ancilla qubits (linear size), or the ancilla-free Barenco
      recursion with controlled-root gates emulated as
      [H; Cphase; H] sandwiches (size grows ~3{^k}; fine for k ≤ 8). *)

val strip_barriers : Circuit.t -> Circuit.t
(** Remove [Barrier] pseudo-gates. Note this {e relaxes} dependencies the
    barrier imposed; apply only when the barrier was informational. *)

val swaps_to_cx : Circuit.t -> Circuit.t
(** Each [Swap (a,b)] becomes [Cx(a,b); Cx(b,a); Cx(a,b)]. *)

val ccx_to_clifford_t : Circuit.t -> Circuit.t
(** Lower every [Ccx] to the 15-gate network. Other gates unchanged. *)

val mcx_gates : ?ancillas:int list -> int list -> int -> Gate.t list
(** [mcx_gates ?ancillas controls target] is a gate sequence implementing a
    multi-controlled X, containing only [Ccx] and narrower gates. With
    [ancillas] (distinct from controls/target, at least
    [List.length controls - 2] of them) the linear ladder is used; without,
    the ancilla-free recursion. Raises [Invalid_argument] if fewer than 3
    controls (use [Cx]/[Ccx] directly), if ancillas overlap operands, or if
    the ancilla-free recursion would exceed 8 controls. *)

val lower_mcx : ?ancillas:int list -> Circuit.t -> Circuit.t
(** Rewrite every [Mcx] via {!mcx_gates}. *)

val to_scheduler_gates : Circuit.t -> Circuit.t
(** Full lowering pipeline: strip barriers, lower [Mcx] (ancilla-free),
    lower [Ccx], expand [Swap]. The result contains only gates for which
    [Gate.is_single_qubit] or [Gate.is_two_qubit] holds, which is what
    {!Autobraid.Scheduler} and {!Gp_baseline} require. *)
