(** Qubit coupling graph.

    Vertices are logical qubits; an edge connects two qubits that share at
    least one two-qubit gate, weighted by the number of such gates. The
    initial-placement stage partitions this graph (paper §3.3, "In a qubit
    coupling graph, two qubits have an edge if there is a CX gate between
    them"). *)

type t

val of_circuit : Circuit.t -> t
(** Build from all two-qubit gates of the circuit. Wide gates ([Ccx]/[Mcx])
    contribute edges between every operand pair, so the graph can also be
    built before lowering. *)

val num_qubits : t -> int

val weight : t -> int -> int -> int
(** Number of two-qubit gates between the pair (0 if none). Symmetric. *)

val neighbors : t -> int -> (int * int) list
(** [(other_qubit, weight)] pairs, ascending by qubit. *)

val degree : t -> int -> int
(** Number of distinct interaction partners. *)

val max_degree : t -> int

val edges : t -> (int * int * int) list
(** All edges [(a, b, weight)] with [a < b], sorted. *)

val total_weight : t -> int
(** Sum of all edge weights = number of two-qubit interactions counted. *)

val density : t -> float
(** Edge count over [n(n-1)/2]; 0 for n < 2. Used to detect the all-to-all
    communication pattern that triggers the Maslov specialisation. *)

val is_degree_two : t -> bool
(** True when every qubit has degree <= 2 — each component is a path or a
    ring. These are the "special graphs with maximal degree of two" the
    paper's initial placement optimises directly (snake embedding). *)

val chain_order : t -> int list option
(** For a degree-<=2 graph, a qubit ordering in which every coupled pair is
    adjacent or nearly adjacent: components are traversed end-to-end (rings
    are cut at an arbitrary edge), isolated qubits appended last. [None]
    when {!is_degree_two} is false. *)
