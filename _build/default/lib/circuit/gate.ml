type t =
  | H of int
  | X of int
  | Y of int
  | Z of int
  | S of int
  | Sdg of int
  | T of int
  | Tdg of int
  | Rx of int * float
  | Ry of int * float
  | Rz of int * float
  | U3 of int * float * float * float
  | Cx of int * int
  | Cz of int * int
  | Cphase of int * int * float
  | Swap of int * int
  | Ccx of int * int * int
  | Mcx of int list * int
  | Measure of int
  | Barrier of int list

let qubits = function
  | H q | X q | Y q | Z q | S q | Sdg q | T q | Tdg q -> [ q ]
  | Rx (q, _) | Ry (q, _) | Rz (q, _) | U3 (q, _, _, _) -> [ q ]
  | Cx (a, b) | Cz (a, b) | Cphase (a, b, _) | Swap (a, b) -> [ a; b ]
  | Ccx (a, b, c) -> [ a; b; c ]
  | Mcx (cs, t) -> cs @ [ t ]
  | Measure q -> [ q ]
  | Barrier qs -> qs

let arity g = List.length (qubits g)

let is_two_qubit = function
  | Cx _ | Cz _ | Cphase _ | Swap _ -> true
  | H _ | X _ | Y _ | Z _ | S _ | Sdg _ | T _ | Tdg _ | Rx _ | Ry _ | Rz _
  | U3 _ | Ccx _ | Mcx _ | Measure _ | Barrier _ ->
    false

let is_single_qubit = function
  | H _ | X _ | Y _ | Z _ | S _ | Sdg _ | T _ | Tdg _ | Rx _ | Ry _ | Rz _
  | U3 _ | Measure _ ->
    true
  | Cx _ | Cz _ | Cphase _ | Swap _ | Ccx _ | Mcx _ | Barrier _ -> false

let is_wide = function
  | Ccx _ | Mcx _ -> true
  | H _ | X _ | Y _ | Z _ | S _ | Sdg _ | T _ | Tdg _ | Rx _ | Ry _ | Rz _
  | U3 _ | Cx _ | Cz _ | Cphase _ | Swap _ | Measure _ | Barrier _ ->
    false

let two_qubit_operands = function
  | Cx (a, b) | Cz (a, b) | Cphase (a, b, _) | Swap (a, b) -> Some (a, b)
  | H _ | X _ | Y _ | Z _ | S _ | Sdg _ | T _ | Tdg _ | Rx _ | Ry _ | Rz _
  | U3 _ | Ccx _ | Mcx _ | Measure _ | Barrier _ ->
    None

let name = function
  | H _ -> "h"
  | X _ -> "x"
  | Y _ -> "y"
  | Z _ -> "z"
  | S _ -> "s"
  | Sdg _ -> "sdg"
  | T _ -> "t"
  | Tdg _ -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | U3 _ -> "u3"
  | Cx _ -> "cx"
  | Cz _ -> "cz"
  | Cphase _ -> "cp"
  | Swap _ -> "swap"
  | Ccx _ -> "ccx"
  | Mcx _ -> "mcx"
  | Measure _ -> "measure"
  | Barrier _ -> "barrier"

let pp ppf g =
  let plain () =
    Format.fprintf ppf "%s %a" (name g)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf q -> Format.fprintf ppf "q%d" q))
      (qubits g)
  in
  match g with
  | Rx (q, a) | Ry (q, a) | Rz (q, a) ->
    Format.fprintf ppf "%s(%.4f) q%d" (name g) a q
  | Cphase (c, t, a) -> Format.fprintf ppf "cp(%.4f) q%d, q%d" a c t
  | U3 (q, th, ph, la) ->
    Format.fprintf ppf "u3(%.4f,%.4f,%.4f) q%d" th ph la q
  | H _ | X _ | Y _ | Z _ | S _ | Sdg _ | T _ | Tdg _ | Cx _ | Cz _ | Swap _
  | Ccx _ | Mcx _ | Measure _ | Barrier _ ->
    plain ()

let to_string g = Format.asprintf "%a" pp g

let equal (a : t) (b : t) = a = b

let map_qubits f = function
  | H q -> H (f q)
  | X q -> X (f q)
  | Y q -> Y (f q)
  | Z q -> Z (f q)
  | S q -> S (f q)
  | Sdg q -> Sdg (f q)
  | T q -> T (f q)
  | Tdg q -> Tdg (f q)
  | Rx (q, a) -> Rx (f q, a)
  | Ry (q, a) -> Ry (f q, a)
  | Rz (q, a) -> Rz (f q, a)
  | U3 (q, a, b, c) -> U3 (f q, a, b, c)
  | Cx (a, b) -> Cx (f a, f b)
  | Cz (a, b) -> Cz (f a, f b)
  | Cphase (a, b, x) -> Cphase (f a, f b, x)
  | Swap (a, b) -> Swap (f a, f b)
  | Ccx (a, b, c) -> Ccx (f a, f b, f c)
  | Mcx (cs, t) -> Mcx (List.map f cs, f t)
  | Measure q -> Measure (f q)
  | Barrier qs -> Barrier (List.map f qs)
