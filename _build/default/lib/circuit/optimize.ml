type stats = { cancelled_pairs : int; merged_rotations : int }

(* Gates that are their own inverse when operands match exactly. *)
let self_inverse (a : Gate.t) (b : Gate.t) =
  match (a, b) with
  | Gate.H x, Gate.H y
  | Gate.X x, Gate.X y
  | Gate.Y x, Gate.Y y
  | Gate.Z x, Gate.Z y ->
    x = y
  | Gate.Cx (x1, x2), Gate.Cx (y1, y2)
  | Gate.Cz (x1, x2), Gate.Cz (y1, y2)
  | Gate.Swap (x1, x2), Gate.Swap (y1, y2) ->
    (x1, x2) = (y1, y2)
  | Gate.Ccx (x1, x2, x3), Gate.Ccx (y1, y2, y3) -> (x1, x2, x3) = (y1, y2, y3)
  | _ -> false

let adjoint_pair (a : Gate.t) (b : Gate.t) =
  match (a, b) with
  | Gate.S x, Gate.Sdg y
  | Gate.Sdg x, Gate.S y
  | Gate.T x, Gate.Tdg y
  | Gate.Tdg x, Gate.T y ->
    x = y
  | Gate.Rx (x, u), Gate.Rx (y, v)
  | Gate.Ry (x, u), Gate.Ry (y, v)
  | Gate.Rz (x, u), Gate.Rz (y, v) ->
    x = y && u = -.v
  | Gate.Cphase (x1, x2, u), Gate.Cphase (y1, y2, v) ->
    (x1, x2) = (y1, y2) && u = -.v
  | _ -> false

let cancels a b = self_inverse a b || adjoint_pair a b

(* Same-axis rotations on the same qubit fuse. *)
let merge (a : Gate.t) (b : Gate.t) : Gate.t option =
  match (a, b) with
  | Gate.Rx (x, u), Gate.Rx (y, v) when x = y -> Some (Gate.Rx (x, u +. v))
  | Gate.Ry (x, u), Gate.Ry (y, v) when x = y -> Some (Gate.Ry (x, u +. v))
  | Gate.Rz (x, u), Gate.Rz (y, v) when x = y -> Some (Gate.Rz (x, u +. v))
  | Gate.Cphase (x1, x2, u), Gate.Cphase (y1, y2, v) when (x1, x2) = (y1, y2)
    ->
    Some (Gate.Cphase (x1, x2, u +. v))
  | _ -> None

let is_zero_rotation (g : Gate.t) =
  match g with
  | Gate.Rx (_, a) | Gate.Ry (_, a) | Gate.Rz (_, a) | Gate.Cphase (_, _, a) ->
    a = 0.
  | _ -> false

let peephole circuit =
  let n = Circuit.num_qubits circuit in
  (* kept.(i) = Some gate for retained gates, None for holes *)
  let kept : Gate.t option array = Array.make (Circuit.length circuit) None in
  let kept_len = ref 0 in
  (* last.(q) = index into [kept] of the most recent gate on wire q *)
  let last = Array.make n (-1) in
  let cancelled = ref 0 and merged = ref 0 in
  let predecessor g =
    (* the unique most-recent gate covering all of g's wires, if its
       operand set matches g's exactly *)
    match Gate.qubits g with
    | [] -> None
    | q :: rest ->
      let i = last.(q) in
      if i < 0 || List.exists (fun q' -> last.(q') <> i) rest then None
      else begin
        match kept.(i) with
        | Some p
          when List.sort compare (Gate.qubits p)
               = List.sort compare (Gate.qubits g) ->
          Some (i, p)
        | Some _ | None -> None
      end
  in
  let rewind_wires qs =
    (* after deleting the gate at index [i], each wire's last pointer must
       fall back to the previous surviving gate touching it *)
    List.iter
      (fun q ->
        let rec back i =
          if i < 0 then last.(q) <- -1
          else
            match kept.(i) with
            | Some p when List.mem q (Gate.qubits p) -> last.(q) <- i
            | Some _ | None -> back (i - 1)
        in
        back (last.(q) - 1))
      qs
  in
  let push g =
    let i = !kept_len in
    kept.(i) <- Some g;
    incr kept_len;
    List.iter (fun q -> last.(q) <- i) (Gate.qubits g)
  in
  Circuit.iter
    (fun _ g ->
      match predecessor g with
      | Some (i, p) when cancels p g ->
        kept.(i) <- None;
        incr cancelled;
        rewind_wires (Gate.qubits g)
      | Some (i, p) -> (
        match merge p g with
        | Some fused ->
          incr merged;
          if is_zero_rotation fused then begin
            kept.(i) <- None;
            rewind_wires (Gate.qubits g)
          end
          else kept.(i) <- Some fused
        | None -> push g)
      | None -> push g)
    circuit;
  let gates =
    Array.to_seq (Array.sub kept 0 !kept_len)
    |> Seq.filter_map (fun g -> g)
    |> List.of_seq
  in
  let out =
    Circuit.create ~name:(Circuit.name circuit) ~num_qubits:n gates
  in
  (out, { cancelled_pairs = !cancelled; merged_rotations = !merged })

let peephole_circuit c = fst (peephole c)
