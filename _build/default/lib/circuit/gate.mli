(** Logical quantum gates.

    The gate set matches what the AutoBraid scheduler consumes: arbitrary
    single-qubit gates (executed locally inside a tile — including T/T†,
    whose magic states are assumed to be supplied at the data location, the
    paper's §4.1 assumption), two-qubit gates (each requiring one braiding
    operation), and wider reversible gates (Toffoli / multi-controlled X)
    that must be decomposed before scheduling — see {!Decompose}. *)

type t =
  (* Single-qubit Cliffords *)
  | H of int
  | X of int
  | Y of int
  | Z of int
  | S of int
  | Sdg of int
  (* Single-qubit non-Cliffords (magic-state consumers) *)
  | T of int
  | Tdg of int
  | Rx of int * float
  | Ry of int * float
  | Rz of int * float
  | U3 of int * float * float * float  (** qubit, theta, phi, lambda *)
  (* Two-qubit gates: one braiding path each *)
  | Cx of int * int  (** control, target *)
  | Cz of int * int
  | Cphase of int * int * float  (** control, target, angle *)
  | Swap of int * int
  (* Wider gates: decompose before scheduling *)
  | Ccx of int * int * int  (** control, control, target *)
  | Mcx of int list * int  (** controls (>= 3), target *)
  (* Non-unitary / structural *)
  | Measure of int
  | Barrier of int list

val qubits : t -> int list
(** Operand qubits, in gate order. For [Barrier] the listed qubits. *)

val arity : t -> int
(** Number of operand qubits. *)

val is_two_qubit : t -> bool
(** True exactly for the gates implemented as one braiding operation
    ([Cx], [Cz], [Cphase], [Swap]). Note a [Swap] left undecomposed counts
    as one braid; {!Decompose.swaps_to_cx} expands it to three. *)

val is_single_qubit : t -> bool
(** True for local gates, including [Measure]. [Barrier] is neither single-
    nor two-qubit. *)

val is_wide : t -> bool
(** True for [Ccx] and [Mcx], which the schedulers refuse. *)

val two_qubit_operands : t -> (int * int) option
(** [Some (a, b)] for two-qubit gates, [None] otherwise. *)

val name : t -> string
(** Lower-case mnemonic, e.g. ["cx"], ["tdg"]. *)

val pp : Format.formatter -> t -> unit
(** E.g. [cx q3, q7] or [rz(0.7854) q2]. *)

val to_string : t -> string

val equal : t -> t -> bool

val map_qubits : (int -> int) -> t -> t
(** Relabel operand qubits (used by placement-aware transforms and
    parser register flattening). *)
