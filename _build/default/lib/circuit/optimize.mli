(** Peephole circuit optimization.

    Lowered reversible circuits are full of adjacent self-inverse pairs
    (RevLib cascades, uncomputation ladders). Before scheduling, it pays to
    cancel them: every braid avoided is a routing-resource win. Two local
    rewrites, both applied in one forward pass to a fixpoint:

    - {b inverse cancellation}: two adjacent gates on exactly the same
      operands that compose to the identity are removed ([H·H], [X·X],
      [Y·Y], [Z·Z], [CX·CX], [CZ·CZ], [SWAP·SWAP], [CCX·CCX], [S·S†],
      [T·T†], [Rz(θ)·Rz(−θ)] and the other rotation axes);
    - {b rotation merging}: adjacent same-axis rotations on one qubit fuse
      ([Rz(a)·Rz(b) → Rz(a+b)]), and a fused rotation of angle exactly 0
      is dropped.

    "Adjacent" is modulo commuting bystanders: gate B cancels gate A iff A
    is the most recent gate on {e every} operand wire of B and they share
    exactly the same operand set. [Barrier]s block optimization across
    them. The rewrites preserve the circuit's unitary exactly (no
    approximate identities). *)

type stats = { cancelled_pairs : int; merged_rotations : int }

val peephole : Circuit.t -> Circuit.t * stats

val peephole_circuit : Circuit.t -> Circuit.t
(** {!peephole} without the statistics. *)
