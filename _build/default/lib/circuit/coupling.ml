module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  n : int;
  weights : int Pair_map.t; (* keys have fst < snd *)
  adj : (int * int) list array; (* ascending by neighbor *)
}

let norm a b = if a < b then (a, b) else (b, a)

let of_circuit c =
  let n = Circuit.num_qubits c in
  let weights = ref Pair_map.empty in
  let bump a b =
    let key = norm a b in
    let cur = try Pair_map.find key !weights with Not_found -> 0 in
    weights := Pair_map.add key (cur + 1) !weights
  in
  Circuit.iter
    (fun _ g ->
      match g with
      | Gate.Cx (a, b) | Gate.Cz (a, b) | Gate.Cphase (a, b, _)
      | Gate.Swap (a, b) ->
        bump a b
      | Gate.Ccx (a, b, t) ->
        bump a b;
        bump a t;
        bump b t
      | Gate.Mcx (cs, t) ->
        let ops = cs @ [ t ] in
        List.iteri
          (fun i a ->
            List.iteri (fun j b -> if i < j then bump a b) ops)
          ops
      | Gate.H _ | Gate.X _ | Gate.Y _ | Gate.Z _ | Gate.S _ | Gate.Sdg _
      | Gate.T _ | Gate.Tdg _ | Gate.Rx _ | Gate.Ry _ | Gate.Rz _
      | Gate.U3 _ | Gate.Measure _ | Gate.Barrier _ ->
        ())
    c;
  let adj = Array.make n [] in
  Pair_map.iter
    (fun (a, b) w ->
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    !weights;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; weights = !weights; adj }

let num_qubits t = t.n

let weight t a b =
  try Pair_map.find (norm a b) t.weights with Not_found -> 0

let neighbors t q = t.adj.(q)

let degree t q = List.length t.adj.(q)

let max_degree t =
  let d = ref 0 in
  for q = 0 to t.n - 1 do
    d := max !d (degree t q)
  done;
  !d

let edges t =
  Pair_map.fold (fun (a, b) w acc -> (a, b, w) :: acc) t.weights []
  |> List.rev

let total_weight t = Pair_map.fold (fun _ w acc -> acc + w) t.weights 0

let density t =
  if t.n < 2 then 0.
  else
    let pairs = t.n * (t.n - 1) / 2 in
    float_of_int (Pair_map.cardinal t.weights) /. float_of_int pairs

let is_degree_two t = max_degree t <= 2

let chain_order t =
  if not (is_degree_two t) then None
  else begin
    let visited = Array.make t.n false in
    let order = ref [] in
    let emit q =
      visited.(q) <- true;
      order := q :: !order
    in
    (* Walk a path/ring component starting from [start], preferring the
       unvisited neighbor at each step. *)
    let walk start =
      let rec go q =
        emit q;
        match List.find_opt (fun (nb, _) -> not visited.(nb)) t.adj.(q) with
        | Some (nb, _) -> go nb
        | None -> ()
      in
      go start
    in
    (* Path components first, entered from an endpoint (degree <= 1 among
       unvisited); this keeps coupled pairs adjacent in the ordering. *)
    for q = 0 to t.n - 1 do
      if (not visited.(q)) && degree t q = 1 then walk q
    done;
    (* Remaining non-isolated components are rings: cut anywhere. *)
    for q = 0 to t.n - 1 do
      if (not visited.(q)) && degree t q > 0 then walk q
    done;
    for q = 0 to t.n - 1 do
      if not visited.(q) then emit q
    done;
    Some (List.rev !order)
  end
