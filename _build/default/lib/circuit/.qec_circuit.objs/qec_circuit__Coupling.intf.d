lib/circuit/coupling.mli: Circuit
