lib/circuit/coupling.ml: Array Circuit Gate List Map
