lib/circuit/dag.ml: Array Circuit Gate Hashtbl Int List Printf Set
