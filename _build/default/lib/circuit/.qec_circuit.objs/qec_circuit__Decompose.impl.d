lib/circuit/decompose.ml: Circuit Float Gate List
