lib/circuit/optimize.ml: Array Circuit Gate List Seq
