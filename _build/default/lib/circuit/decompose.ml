let strip_barriers c =
  Circuit.map_gates
    (function Gate.Barrier _ -> [] | g -> [ g ])
    c

let swap_gates a b = [ Gate.Cx (a, b); Gate.Cx (b, a); Gate.Cx (a, b) ]

let swaps_to_cx c =
  Circuit.map_gates
    (function Gate.Swap (a, b) -> swap_gates a b | g -> [ g ])
    c

(* Nielsen & Chuang Fig. 4.9: Toffoli in Clifford+T. *)
let ccx_gates a b t =
  Gate.
    [
      H t;
      Cx (b, t);
      Tdg t;
      Cx (a, t);
      T t;
      Cx (b, t);
      Tdg t;
      Cx (a, t);
      T b;
      T t;
      H t;
      Cx (a, b);
      T a;
      Tdg b;
      Cx (a, b);
    ]

let ccx_to_clifford_t c =
  Circuit.map_gates
    (function Gate.Ccx (a, b, t) -> ccx_gates a b t | g -> [ g ])
    c

(* Controlled V^(1/2^m) where V^2^m = X, emulated as one braid plus local
   gates. Only the interaction structure matters for scheduling; we use a
   controlled-phase sandwiched in Hadamards (a controlled X-axis rotation),
   with [dagger] flipping the angle sign. *)
let controlled_root ~dagger ~m c t =
  let angle = Float.pi /. float_of_int (1 lsl m) in
  let angle = if dagger then -.angle else angle in
  Gate.[ H t; Cphase (c, t, angle); H t ]

(* Ancilla-free Barenco-style recursion. [root_m = 0] means a plain
   multi-controlled X; [root_m = m > 0] means multi-controlled V^(1/2^m).
   C^k U = CR(ck,t) . C^{k-1}X(c1..ck-1 -> ck) . CR^†(ck,t)
         . C^{k-1}X(c1..ck-1 -> ck) . C^{k-1}R(c1..ck-1 -> t)
   where R = sqrt U. *)
let rec mcu_free ~root_m controls target =
  match controls with
  | [] -> invalid_arg "Decompose.mcu_free: no controls"
  | [ c ] ->
    if root_m = 0 then [ Gate.Cx (c, target) ]
    else controlled_root ~dagger:false ~m:root_m c target
  | [ a; b ] when root_m = 0 -> [ Gate.Ccx (a, b, target) ]
  | _ ->
    let rec split acc = function
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false
    in
    let front, last = split [] controls in
    controlled_root ~dagger:false ~m:(root_m + 1) last target
    @ mcu_free ~root_m:0 front last
    @ controlled_root ~dagger:true ~m:(root_m + 1) last target
    @ mcu_free ~root_m:0 front last
    @ mcu_free ~root_m:(root_m + 1) front target

(* Linear-size ladder with k-2 ancillas: AND-accumulate all but the last
   control into ancilla qubits, combine the last control in the final
   Toffoli onto the target, then uncompute. 2(k-2)+1 Toffolis total. *)
let mcx_ladder controls target ancillas =
  match (controls, List.rev controls) with
  | c1 :: c2 :: _, last :: _ when List.length controls >= 3 ->
    let middle =
      (* controls strictly between the first two and the last *)
      List.filteri
        (fun i _ -> i >= 2 && i < List.length controls - 1)
        controls
    in
    let compute = ref [ Gate.Ccx (c1, c2, List.hd ancillas) ] in
    let rec accumulate prev anc_left = function
      | [] -> prev
      | c :: cs -> (
        match anc_left with
        | a :: more ->
          compute := Gate.Ccx (c, prev, a) :: !compute;
          accumulate a more cs
        | [] -> invalid_arg "Decompose.mcx_ladder: not enough ancillas")
    in
    let top = accumulate (List.hd ancillas) (List.tl ancillas) middle in
    let compute = List.rev !compute in
    let uncompute = List.rev compute in
    compute @ [ Gate.Ccx (last, top, target) ] @ uncompute
  | _ -> invalid_arg "Decompose.mcx_ladder: fewer than 3 controls"

let mcx_gates ?ancillas controls target =
  let k = List.length controls in
  if k < 3 then invalid_arg "Decompose.mcx_gates: use Cx/Ccx for < 3 controls";
  let operands = target :: controls in
  match ancillas with
  | Some anc ->
    if List.exists (fun a -> List.mem a operands) anc then
      invalid_arg "Decompose.mcx_gates: ancilla overlaps operands";
    if List.length anc < k - 2 then
      invalid_arg "Decompose.mcx_gates: need at least k-2 ancillas";
    mcx_ladder controls target anc
  | None ->
    if k > 8 then
      invalid_arg
        "Decompose.mcx_gates: ancilla-free recursion capped at 8 controls";
    mcu_free ~root_m:0 controls target

let lower_mcx ?ancillas c =
  Circuit.map_gates
    (function
      | Gate.Mcx (cs, t) -> mcx_gates ?ancillas cs t
      | g -> [ g ])
    c

let to_scheduler_gates c =
  c |> strip_barriers |> lower_mcx |> ccx_to_clifford_t |> swaps_to_cx
