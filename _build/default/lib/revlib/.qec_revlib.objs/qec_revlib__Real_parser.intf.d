lib/revlib/real_parser.mli: Qec_circuit
