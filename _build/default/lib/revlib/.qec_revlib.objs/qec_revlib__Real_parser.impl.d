lib/revlib/real_parser.ml: Filename Float Hashtbl List Printf Qec_circuit String
