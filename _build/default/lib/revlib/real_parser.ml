exception Error of { line : int; msg : string }

module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error { line; msg })) fmt

type operand = { qubit : int; negated : bool }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Strip an inline comment starting with '#'. *)
let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let mct builder lineno (ops : operand list) =
  match List.rev ops with
  | [] -> fail lineno "gate with no lines"
  | target :: rev_controls ->
    if target.negated then fail lineno "negative target is not meaningful";
    let controls = List.rev rev_controls in
    let neg = List.filter (fun o -> o.negated) controls in
    let conj () =
      List.iter (fun o -> C.Builder.add builder (G.X o.qubit)) neg
    in
    conj ();
    (match List.map (fun o -> o.qubit) controls with
    | [] -> C.Builder.add builder (G.X target.qubit)
    | [ c ] -> C.Builder.add builder (G.Cx (c, target.qubit))
    | [ c1; c2 ] -> C.Builder.add builder (G.Ccx (c1, c2, target.qubit))
    | cs -> C.Builder.add builder (G.Mcx (cs, target.qubit)));
    conj ()

let fredkin builder lineno (ops : operand list) =
  match List.rev ops with
  | b :: a :: rev_controls ->
    if a.negated || b.negated then fail lineno "negative swap target";
    let controls = List.rev rev_controls in
    (* cswap = three Toffoli-like gates; with extra controls each CX of the
       swap expansion gains the control set. *)
    let cxs = [ (a.qubit, b.qubit); (b.qubit, a.qubit); (a.qubit, b.qubit) ] in
    let neg = List.filter (fun o -> o.negated) controls in
    let conj () =
      List.iter (fun o -> C.Builder.add builder (G.X o.qubit)) neg
    in
    conj ();
    List.iter
      (fun (c, t) ->
        match List.map (fun o -> o.qubit) controls with
        | [] -> C.Builder.add builder (G.Cx (c, t))
        | [ c1 ] -> C.Builder.add builder (G.Ccx (c1, c, t))
        | cs -> C.Builder.add builder (G.Mcx (cs @ [ c ], t)))
      cxs;
    conj ()
  | [ _ ] | [] -> fail lineno "f gate expects at least two lines"

(* Controlled V (square root of X): one braid plus local gates — the same
   emulation Decompose uses for controlled roots. *)
let controlled_v builder lineno ~dagger (ops : operand list) =
  match ops with
  | [ c; t ] ->
    if c.negated || t.negated then fail lineno "negative control on v gate";
    let angle = if dagger then -.(Float.pi /. 2.) else Float.pi /. 2. in
    C.Builder.add builder (G.H t.qubit);
    C.Builder.add builder (G.Cphase (c.qubit, t.qubit, angle));
    C.Builder.add builder (G.H t.qubit)
  | _ -> fail lineno "v gate expects exactly two lines"

let of_string ?(name = "revlib") src =
  let lines = String.split_on_char '\n' src in
  let numvars = ref 0 in
  let var_index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let builder = ref None in
  let in_body = ref false in
  let ended = ref false in
  let get_builder lineno =
    match !builder with
    | Some b -> b
    | None ->
      if !numvars = 0 then fail lineno "gate before .numvars";
      let b = C.Builder.create ~name ~num_qubits:!numvars () in
      builder := Some b;
      b
  in
  let operand lineno tok =
    let negated = String.length tok > 0 && tok.[0] = '-' in
    let base = if negated then String.sub tok 1 (String.length tok - 1) else tok in
    let qubit =
      match Hashtbl.find_opt var_index base with
      | Some i -> i
      | None -> (
        (* Files without .variables use x0, x1, ... or bare indices. *)
        match int_of_string_opt base with
        | Some i when i >= 0 && i < !numvars -> i
        | Some _ | None -> fail lineno "unknown variable %s" base)
    in
    { qubit; negated }
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let text = String.trim (strip_comment raw) in
      if text <> "" && not !ended then
        match split_ws text with
        | [] -> ()
        | directive :: rest when directive.[0] = '.' -> (
          match (String.lowercase_ascii directive, rest) with
          | ".version", _ | ".inputs", _ | ".outputs", _ | ".constants", _
          | ".garbage", _ | ".inputbus", _ | ".outputbus", _ | ".define", _ ->
            ()
          | ".numvars", [ n ] -> (
            match int_of_string_opt n with
            | Some v when v > 0 -> numvars := v
            | Some _ | None -> fail lineno "bad .numvars")
          | ".variables", vars ->
            if List.length vars <> !numvars then
              fail lineno ".variables count differs from .numvars";
            List.iteri (fun j v -> Hashtbl.replace var_index v j) vars
          | ".begin", _ -> in_body := true
          | ".end", _ -> ended := true
          | d, _ -> fail lineno "unknown directive %s" d)
        | kind :: args ->
          if not !in_body then fail lineno "gate outside .begin/.end";
          let b = get_builder lineno in
          let ops = List.map (operand lineno) args in
          let kl = String.lowercase_ascii kind in
          if kl = "v" then controlled_v b lineno ~dagger:false ops
          else if kl = "v+" then controlled_v b lineno ~dagger:true ops
          else if String.length kl >= 1 && kl.[0] = 't' then begin
            (match int_of_string_opt (String.sub kl 1 (String.length kl - 1)) with
            | Some k when k = List.length ops -> ()
            | Some _ -> fail lineno "%s arity mismatch" kind
            | None -> fail lineno "unknown gate %s" kind);
            mct b lineno ops
          end
          else if String.length kl >= 1 && kl.[0] = 'f' then begin
            (match int_of_string_opt (String.sub kl 1 (String.length kl - 1)) with
            | Some k when k = List.length ops && k >= 2 -> ()
            | Some _ -> fail lineno "%s arity mismatch" kind
            | None -> fail lineno "unknown gate %s" kind);
            fredkin b lineno ops
          end
          else fail lineno "unknown gate %s" kind)
    lines;
  match !builder with
  | Some b -> C.Builder.finish b
  | None ->
    if !numvars > 0 then
      C.Builder.finish (C.Builder.create ~name ~num_qubits:!numvars ())
    else fail 0 "no .numvars declaration"

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  of_string ~name:(Filename.remove_extension (Filename.basename path)) src
