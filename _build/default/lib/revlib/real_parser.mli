(** Parser for the RevLib [.real] reversible-circuit format.

    The paper's "building blocks" benchmarks (urf*, squar*, sqrt8, alu,
    4gt*, rd32) are RevLib circuits. The format, per the RevLib spec:

    {v
    .version 2.0
    .numvars 3
    .variables a b c
    .constants --0        (optional)
    .garbage ---           (optional)
    .begin
    t3 a b c               # Toffoli: controls a,b ; target c
    t2 a b                 # CNOT
    t1 a                   # NOT
    f3 a b c               # Fredkin: control a ; swaps b,c
    v a b                  # controlled-V
    v+ a b                 # controlled-V†
    .end
    v}

    A leading [-] on a control line denotes a negative control, handled by
    conjugating that control with X gates. Controlled-V (±) gates are
    emulated as one braid plus local gates, the same scheduling-preserving
    emulation used by {!Qec_circuit.Decompose}. Output circuits contain
    [X]/[Cx]/[Ccx]/[Mcx]/[H]/[Cphase] gates; run
    {!Qec_circuit.Decompose.to_scheduler_gates} before scheduling. *)

exception Error of { line : int; msg : string }

val of_string : ?name:string -> string -> Qec_circuit.Circuit.t
(** Raises {!Error} on malformed input. *)

val of_file : string -> Qec_circuit.Circuit.t
(** Circuit named after the file basename. Raises [Sys_error] on I/O
    failure. *)
