(** Balanced graph bisection with boundary refinement.

    A lightweight stand-in for METIS (which the paper uses for initial
    placement): BFS-grown initial halves followed by greedy boundary swap
    refinement in the Kernighan–Lin spirit. Deterministic given the RNG
    state. *)

val bisect :
  rng:Qec_util.Rng.t ->
  weight:(int -> int -> int) ->
  neighbors:(int -> int list) ->
  size_a:int ->
  int list ->
  int list * int list
(** [bisect ~rng ~weight ~neighbors ~size_a nodes] splits [nodes] into two
    lists of sizes [size_a] and [length nodes - size_a], heuristically
    minimizing the total weight of edges crossing the cut. [neighbors]
    may mention nodes outside [nodes]; they are ignored. Raises
    [Invalid_argument] if [size_a] is out of range. *)

val cut_weight :
  weight:(int -> int -> int) -> int list -> int list -> int
(** Total weight across the cut — exposed for tests. *)
