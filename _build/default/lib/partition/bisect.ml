module Int_set = Set.Make (Int)

let cut_weight ~weight a b =
  List.fold_left
    (fun acc x -> List.fold_left (fun acc y -> acc + weight x y) acc b)
    0 a

(* Grow side A by BFS from a start node, preferring heavy neighbors, so
   tightly-coupled qubits land together. *)
let bfs_grow ~weight ~neighbors ~size_a nodes start =
  let node_set = Int_set.of_list nodes in
  let in_a = Hashtbl.create 64 in
  let frontier = Queue.create () in
  Queue.push start frontier;
  let count = ref 0 in
  while !count < size_a && not (Queue.is_empty frontier) do
    let v = Queue.pop frontier in
    if not (Hashtbl.mem in_a v) then begin
      Hashtbl.add in_a v ();
      incr count;
      let nbs =
        neighbors v
        |> List.filter (fun u ->
               Int_set.mem u node_set && not (Hashtbl.mem in_a u))
        |> List.sort (fun u1 u2 -> compare (weight v u2) (weight v u1))
      in
      List.iter (fun u -> Queue.push u frontier) nbs
    end
  done;
  (* Components may be exhausted before reaching size_a: top up in node
     order. *)
  List.iter
    (fun v ->
      if !count < size_a && not (Hashtbl.mem in_a v) then begin
        Hashtbl.add in_a v ();
        incr count
      end)
    nodes;
  in_a

(* One refinement pass: greedily swap the boundary pair with the best
   positive gain, lock swapped nodes, repeat. Gains are recomputed lazily;
   the pass is bounded to keep recursion cheap. *)
let refine ~weight ~neighbors in_a nodes =
  let node_set = Int_set.of_list nodes in
  let side v = Hashtbl.mem in_a v in
  (* external - internal connection cost of v *)
  let d v =
    List.fold_left
      (fun acc u ->
        if not (Int_set.mem u node_set) then acc
        else if side u <> side v then acc + weight v u
        else acc - weight v u)
      0 (neighbors v)
  in
  let boundary v =
    List.exists
      (fun u -> Int_set.mem u node_set && side u <> side v)
      (neighbors v)
  in
  let locked = Hashtbl.create 64 in
  let max_swaps = max 4 (List.length nodes / 4) in
  let rec step k =
    if k = 0 then ()
    else begin
      let candidates_a =
        List.filter (fun v -> side v && boundary v && not (Hashtbl.mem locked v)) nodes
      and candidates_b =
        List.filter
          (fun v -> (not (side v)) && boundary v && not (Hashtbl.mem locked v))
          nodes
      in
      let best = ref None in
      List.iter
        (fun a ->
          let da = d a in
          List.iter
            (fun b ->
              let gain = da + d b - (2 * weight a b) in
              match !best with
              | Some (_, _, g) when g >= gain -> ()
              | _ -> best := Some (a, b, gain))
            candidates_b)
        candidates_a;
      match !best with
      | Some (a, b, gain) when gain > 0 ->
        Hashtbl.remove in_a a;
        Hashtbl.add in_a b ();
        Hashtbl.add locked a ();
        Hashtbl.add locked b ();
        step (k - 1)
      | Some _ | None -> ()
    end
  in
  step max_swaps

let bisect ~rng ~weight ~neighbors ~size_a nodes =
  let n = List.length nodes in
  if size_a < 0 || size_a > n then invalid_arg "Bisect.bisect: bad size_a";
  if size_a = 0 then ([], nodes)
  else if size_a = n then (nodes, [])
  else begin
    let arr = Array.of_list nodes in
    let start = arr.(Qec_util.Rng.int rng n) in
    let in_a = bfs_grow ~weight ~neighbors ~size_a nodes start in
    (* Boundary refinement is only worthwhile on small node sets; on big
       ones the O(boundary^2) scan dominates recursion cost. *)
    if n <= 256 then refine ~weight ~neighbors in_a nodes;
    List.partition (Hashtbl.mem in_a) nodes
  end
