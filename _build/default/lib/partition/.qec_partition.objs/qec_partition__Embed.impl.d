lib/partition/embed.ml: Array Bisect List Qec_circuit Qec_lattice Qec_util
