lib/partition/bisect.mli: Qec_util
