lib/partition/embed.mli: Qec_circuit Qec_lattice
