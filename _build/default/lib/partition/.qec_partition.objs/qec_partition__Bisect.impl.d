lib/partition/bisect.ml: Array Hashtbl Int List Qec_util Queue Set
