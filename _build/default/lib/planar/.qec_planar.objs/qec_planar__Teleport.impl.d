lib/planar/teleport.ml: Autobraid List Qec_circuit Qec_lattice Qec_surface Sys
