lib/planar/teleport.mli: Autobraid Qec_circuit Qec_surface
