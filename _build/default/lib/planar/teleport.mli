(** Planar-code (teleportation) communication model — the comparison mode
    of Javadi-Abhari et al. (MICRO'17) that motivates the AutoBraid paper's
    closing discussion (§5): braiding congestion made the double-defect
    code look worse than the planar code; AutoBraid argues that a proper
    braiding scheduler flips the conclusion because the double-defect code
    "uses fewer physical qubits than the planar code".

    Model (a documented simplification, see DESIGN.md):

    - a CX between two tiles teleports through an EPR channel routed on
      the same channel graph; the channel is held for {e one} code-cycle
      block ([d] cycles) instead of a braid's [2d] — entanglement
      distribution parallelizes along the path;
    - channels of one round must still be vertex-disjoint, so the same
      routing machinery applies (the scheduler below reuses the stack-based
      path finder, or a greedy shortest-first order);
    - the layout never changes (teleportation {e is} transport);
    - a planar logical qubit plus its share of channel ancillas costs
      [overhead_factor] × the double-defect tile (default 1.5×).

    The headline comparison ({!Qec_benchmarks} + bench section "planar"):
    per-round latency favors the planar code by ~2×, but at equal physical
    budget the double-defect code affords a higher code distance; with
    AutoBraid closing the congestion gap, double-defect wins the
    qubits-for-reliability trade — the paper's claim. *)

type ordering =
  | Greedy_shortest  (** MICRO'17-style order, shortest channels first *)
  | Stack  (** AutoBraid's stack-based order, for a like-for-like fight *)

type options = {
  ordering : ordering;
  initial : Autobraid.Initial_layout.method_;
  overhead_factor : float;  (** physical-qubit ratio vs double-defect *)
  seed : int;
}

val default_options : options
(** [Stack] ordering, [Partitioned] placement, overhead 1.5, seed 11. *)

val run :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  Autobraid.Scheduler.result
(** Schedule under the teleportation model. The shared result record's
    [swap_*] fields are always 0; a round with at least one teleported CX
    costs [d] cycles (not [2d]); [critical_path_cycles] uses the same
    teleport costs, so "vs CP" ratios stay comparable. *)

val physical_qubits :
  ?overhead_factor:float -> num_logical:int -> d:int -> unit -> int
(** Physical qubits of the planar layout at distance [d]. *)

val distance_for_budget :
  ?overhead_factor:float -> num_logical:int -> budget:int -> unit -> int option
(** Largest odd distance whose planar layout fits in [budget] physical
    qubits; [None] if even d = 3 does not fit. Used for the equal-budget
    comparison. *)
