module Circuit = Qec_circuit.Circuit
module Dag = Qec_circuit.Dag
module Decompose = Qec_circuit.Decompose
module Grid = Qec_lattice.Grid
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Timing = Qec_surface.Timing
module Task = Autobraid.Task
module Scheduler = Autobraid.Scheduler

type ordering = Greedy_shortest | Stack

type options = {
  ordering : ordering;
  initial : Autobraid.Initial_layout.method_;
  overhead_factor : float;
  seed : int;
}

let default_options =
  {
    ordering = Stack;
    initial = Autobraid.Initial_layout.Partitioned;
    overhead_factor = 1.5;
    seed = 11;
  }

let physical_qubits ?(overhead_factor = 1.5) ~num_logical ~d () =
  int_of_float
    (ceil
       (overhead_factor
       *. float_of_int
            (Qec_surface.Resources.total_physical_qubits ~num_logical ~d)))

let distance_for_budget ?(overhead_factor = 1.5) ~num_logical ~budget () =
  let rec grow d best =
    if d > 201 then best
    else if physical_qubits ~overhead_factor ~num_logical ~d () <= budget then
      grow (d + 2) (Some d)
    else best
  in
  grow 3 None

(* Teleported-CX latency: the channel is held for one d-cycle block. *)
let teleport_cycles timing = Timing.single_qubit_cycles timing

let run ?(options = default_options) timing circuit : Scheduler.result =
  let t0 = Sys.time () in
  let circuit = Decompose.to_scheduler_gates circuit in
  let n = Circuit.num_qubits circuit in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
  let grid = Grid.create side in
  let placement =
    Autobraid.Initial_layout.place ~seed:options.seed ~method_:options.initial
      circuit grid
  in
  let dag = Dag.of_circuit circuit in
  let frontier = Dag.Frontier.create dag in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let cycles = ref 0 and rounds = ref 0 and braid_rounds = ref 0 in
  let util_sum = ref 0. and util_peak = ref 0. in
  while not (Dag.Frontier.is_done frontier) do
    let ready = Dag.Frontier.ready frontier in
    let singles, cx_tasks =
      List.fold_left
        (fun (singles, cxs) id ->
          match Task.of_gate id (Circuit.gate circuit id) with
          | Some t -> (singles, t :: cxs)
          | None -> (id :: singles, cxs))
        ([], []) ready
    in
    let singles = List.rev singles and cx_tasks = List.rev cx_tasks in
    if cx_tasks = [] then begin
      List.iter (Dag.Frontier.complete frontier) singles;
      cycles := !cycles + Timing.single_qubit_cycles timing;
      incr rounds
    end
    else begin
      Occupancy.clear occ;
      let routed =
        match options.ordering with
        | Stack ->
          (Autobraid.Stack_finder.find router occ placement cx_tasks)
            .Autobraid.Stack_finder.routed
        | Greedy_shortest ->
          let order =
            List.sort
              (fun a b ->
                let da = Task.distance placement a
                and db = Task.distance placement b in
                if da <> db then compare da db
                else compare a.Task.id b.Task.id)
              cx_tasks
          in
          fst (Autobraid.Stack_finder.route_in_order router occ placement order)
      in
      List.iter
        (fun ((t : Task.t), _) -> Dag.Frontier.complete frontier t.id)
        routed;
      List.iter (Dag.Frontier.complete frontier) singles;
      let u = Occupancy.utilization occ in
      util_sum := !util_sum +. u;
      if u > !util_peak then util_peak := u;
      cycles := !cycles + teleport_cycles timing;
      incr rounds;
      incr braid_rounds
    end
  done;
  (* Critical path under teleport costs: every gate costs d cycles. *)
  let critical_path_cycles =
    Dag.critical_path ~cost:(fun _ -> Timing.single_qubit_cycles timing) dag
  in
  {
    Scheduler.name = Circuit.name circuit;
    num_qubits = n;
    num_gates = Circuit.length circuit;
    num_two_qubit = Circuit.two_qubit_count circuit;
    lattice_side = side;
    total_cycles = !cycles;
    rounds = !rounds;
    braid_rounds = !braid_rounds;
    swap_layers = 0;
    swaps_inserted = 0;
    critical_path_cycles;
    avg_utilization =
      (if !braid_rounds = 0 then 0.
       else !util_sum /. float_of_int !braid_rounds);
    peak_utilization = !util_peak;
    compile_time_s = Sys.time () -. t0;
  }
