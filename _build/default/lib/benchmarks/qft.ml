module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let circuit ?(with_swaps = false) n =
  if n < 1 then invalid_arg "Qft.circuit: n < 1";
  let b = C.Builder.create ~name:(Printf.sprintf "qft%d" n) ~num_qubits:n () in
  for i = 0 to n - 1 do
    C.Builder.add b (G.H i);
    for j = i + 1 to n - 1 do
      let angle = Float.pi /. float_of_int (1 lsl (j - i)) in
      C.Builder.add b (G.Cphase (j, i, angle))
    done
  done;
  if with_swaps then
    for i = 0 to (n / 2) - 1 do
      C.Builder.add b (G.Swap (i, n - 1 - i))
    done;
  C.Builder.finish b
