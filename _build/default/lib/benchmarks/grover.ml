module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module D = Qec_circuit.Decompose

(* Ancilla qubits appended after the n search qubits let the MCZ lower to
   the linear Toffoli ladder instead of the (capped) ancilla-free
   recursion. *)
let ancilla_count n = max 0 (n - 3)

(* Multi-controlled Z on search qubits [0..n-1] = H on the last, MCX, H. *)
let mcz builder n =
  let target = n - 1 in
  let controls = List.init (n - 1) (fun i -> i) in
  C.Builder.add builder (G.H target);
  (match controls with
  | [ c ] -> C.Builder.add builder (G.Cx (c, target))
  | [ c1; c2 ] -> C.Builder.add builder (G.Ccx (c1, c2, target))
  | cs ->
    let ancillas = List.init (ancilla_count n) (fun i -> n + i) in
    C.Builder.add_list builder (D.mcx_gates ~ancillas cs target));
  C.Builder.add builder (G.H target)

let circuit ?iterations ?marked n =
  if n < 3 then invalid_arg "Grover.circuit: n < 3";
  if n > 20 then invalid_arg "Grover.circuit: n > 20 (state space too large)";
  let iterations =
    match iterations with
    | Some i ->
      if i < 1 then invalid_arg "Grover.circuit: iterations < 1";
      i
    | None ->
      min 8
        (max 1
           (int_of_float
              (Float.round (Float.pi /. 4. *. sqrt (float_of_int (1 lsl n))))))
  in
  let marked = Option.value marked ~default:((1 lsl n) - 1) in
  if marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.circuit: marked state out of range";
  let builder =
    C.Builder.create
      ~name:(Printf.sprintf "grover%d" n)
      ~num_qubits:(n + ancilla_count n)
      ()
  in
  let flip_unmarked () =
    (* X on qubits where the marked state has a 0 bit *)
    for q = 0 to n - 1 do
      if marked land (1 lsl q) = 0 then C.Builder.add builder (G.X q)
    done
  in
  for q = 0 to n - 1 do
    C.Builder.add builder (G.H q)
  done;
  for _ = 1 to iterations do
    (* oracle: phase-flip the marked state *)
    flip_unmarked ();
    mcz builder n;
    flip_unmarked ();
    (* diffusion: reflect about the mean *)
    for q = 0 to n - 1 do
      C.Builder.add builder (G.H q)
    done;
    for q = 0 to n - 1 do
      C.Builder.add builder (G.X q)
    done;
    mcz builder n;
    for q = 0 to n - 1 do
      C.Builder.add builder (G.X q)
    done;
    for q = 0 to n - 1 do
      C.Builder.add builder (G.H q)
    done
  done;
  for q = 0 to n - 1 do
    C.Builder.add builder (G.Measure q)
  done;
  C.Builder.finish builder
