module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit
module D = Qec_circuit.Decompose

(* Elementary-gate cost of each emitted MCT after lowering: X = 1,
   CX = 1, CCX = 15 (Clifford+T network). *)
let random_mct ?(seed = 1) ~qubits ~target_gates ~name () =
  if qubits < 3 then invalid_arg "Building_blocks.random_mct: qubits < 3";
  if target_gates < 1 then
    invalid_arg "Building_blocks.random_mct: target_gates < 1";
  let rng = Qec_util.Rng.create seed in
  let b = C.Builder.create ~name ~num_qubits:qubits () in
  let emitted = ref 0 in
  while !emitted < target_gates do
    let distinct k =
      Qec_util.Rng.sample_without_replacement rng k qubits
    in
    (* RevLib functions are Toffoli-heavy with occasional CNOT/NOT lines. *)
    let roll = Qec_util.Rng.int rng 10 in
    if roll < 1 then begin
      (match distinct 1 with
      | [ t ] -> C.Builder.add b (G.X t)
      | _ -> assert false);
      incr emitted
    end
    else if roll < 4 then begin
      (match distinct 2 with
      | [ c; t ] -> C.Builder.add b (G.Cx (c, t))
      | _ -> assert false);
      incr emitted
    end
    else begin
      (match distinct 3 with
      | [ c1; c2; t ] -> C.Builder.add b (G.Ccx (c1, c2, t))
      | _ -> assert false);
      emitted := !emitted + 15
    end
  done;
  D.to_scheduler_gates (C.Builder.finish b)

(* name, qubits, Table-2 elementary gate count, seed *)
let catalog =
  [
    ("4gt11_8", 5, 20, 11);
    ("4gt5_75", 5, 48, 75);
    ("alu-v0_26", 5, 48, 26);
    ("rd32-v0", 4, 34, 32);
    ("sqrt8_260", 12, 3090, 260);
    ("squar5_261", 13, 1110, 261);
    ("squar7", 15, 4070, 7);
    ("urf1_278", 9, 54800, 278);
    ("urf2_277", 8, 20100, 277);
    ("urf5_158", 9, 160000, 158);
    ("urf5_280", 9, 49800, 280);
  ]

let names = List.map (fun (n, _, _, _) -> n) catalog

let by_name name =
  let n, qubits, gates, seed =
    List.find (fun (n, _, _, _) -> n = name) catalog
  in
  random_mct ~seed ~qubits ~target_gates:gates ~name:n ()
