(** Quantum phase estimation circuits.

    The paper's introduction names phase estimation (with QFT) as the
    paradigmatic exponential-speedup application. The standard circuit:
    Hadamards on a [precision]-qubit counting register, controlled powers
    [U^(2^k)] applied to the eigenstate register, then the inverse QFT on
    the counting register.

    The unitary here is a Z-rotation [U = p(2π·phase)] on one target
    qubit, whose eigenstate |1⟩ the circuit prepares — so the measured
    counting register should read the best [precision]-bit approximation
    of [phase], a property the simulator tests verify exactly. *)

val circuit : ?phase:float -> precision:int -> unit -> Qec_circuit.Circuit.t
(** [circuit ~precision ()] uses [precision + 1] qubits (counting register
    then target). [phase] defaults to 1/3 (inexact in binary, exercising
    rounding); it must lie in [0, 1). Raises [Invalid_argument] if
    [precision < 1] or the phase is out of range. *)

val num_qubits : precision:int -> int
