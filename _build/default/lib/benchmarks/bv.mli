(** Bernstein–Vazirani circuits (the paper's Fig. 6 example of {e zero}
    CX parallelism: every oracle CX targets the same ancilla, so the CXs
    form a dependence chain). *)

val circuit : ?secret:bool array -> int -> Qec_circuit.Circuit.t
(** [circuit n] uses [n] qubits: [n-1] data qubits and the ancilla at index
    [n-1]. The oracle applies a CX from data qubit [i] to the ancilla for
    every set bit of [secret] (default: all ones, the worst case and the
    one matching the paper's gate counts — BV-100 = 299 gates). Raises
    [Invalid_argument] if [n < 2] or [secret] has length <> [n-1]. *)
