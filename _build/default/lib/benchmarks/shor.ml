module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let num_qubits ~bits = (2 * bits) + 3

(* Register layout (Beauregard): exponent register [0, bits), work register
   [bits, 2*bits] (bits+1 qubits), carry and flag ancillas last. Exponent
   qubits are recycled across the 2*bits controlled multiplications. *)
let circuit ?multipliers ~bits () =
  if bits < 2 then invalid_arg "Shor.circuit: bits < 2";
  let multipliers = Option.value multipliers ~default:(2 * bits) in
  if multipliers < 1 then invalid_arg "Shor.circuit: multipliers < 1";
  let n = num_qubits ~bits in
  let b =
    C.Builder.create ~name:(Printf.sprintf "shor%d" n) ~num_qubits:n ()
  in
  let exponent q = q in
  let work j = bits + j in
  let carry = n - 2 and flag = n - 1 in
  (* Superpose the exponent register. *)
  for q = 0 to bits - 1 do
    C.Builder.add b (G.H (exponent q))
  done;
  (* Controlled modular multiplications: each is a Draper adder — a
     controlled-phase cascade from one exponent qubit into the whole work
     register — plus an overflow check through the carry ancilla. *)
  for m = 0 to multipliers - 1 do
    let ctrl = exponent (m mod bits) in
    for j = 0 to bits do
      let angle = Float.pi /. float_of_int (1 lsl (j mod 16)) in
      C.Builder.add b (G.Cphase (ctrl, work j, angle))
    done;
    (* modular reduction: compare/restore through the carry qubit *)
    C.Builder.add b (G.Cx (work bits, carry));
    C.Builder.add b (G.Cx (carry, flag));
    C.Builder.add b (G.Cx (work bits, carry))
  done;
  (* Semiclassical inverse QFT on the exponent register: single-qubit
     rotations conditioned on prior measurement outcomes. *)
  for q = bits - 1 downto 0 do
    C.Builder.add b (G.Rz (exponent q, Float.pi /. 4.));
    C.Builder.add b (G.H (exponent q));
    C.Builder.add b (G.Measure (exponent q))
  done;
  C.Builder.finish b
