(** Binary-welded-tree walk circuits (structural reproduction).

    The paper's BWT instances come from the Ghosh et al. oracle synthesis;
    those exact netlists are not available offline, so we reproduce the
    {e structure} that matters to a communication scheduler: two complete
    binary trees of height [h] welded at the leaves by a random matching,
    a walker register walking the graph for [steps] oracle queries, with
    each query touching tree edges level by level (long dependence chains,
    sparse parallelism — the paper's BWT rows show near-baseline speedups
    of ~1.4x). Deterministic in [seed]. *)

val circuit : ?steps:int -> ?seed:int -> height:int -> unit -> Qec_circuit.Circuit.t
(** Uses [2·(2^height - 1) + 1] qubits: both trees' nodes plus a walker
    ancilla. [steps] defaults to [2·height + 2] (a full traversal there and
    back). Raises [Invalid_argument] if [height < 2] or [steps < 1]. *)

val num_qubits : height:int -> int
