module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let tree_size height = (1 lsl height) - 1

let num_qubits ~height = (2 * tree_size height) + 1

(* Node layout: tree A occupies [0, 2^h-2], tree B the next block, walker
   last. Within a tree, node i has children 2i+1 and 2i+2; leaves are the
   last 2^(h-1) nodes. *)
let circuit ?steps ?(seed = 7) ~height () =
  if height < 2 then invalid_arg "Bwt.circuit: height < 2";
  let steps = Option.value steps ~default:((2 * height) + 2) in
  if steps < 1 then invalid_arg "Bwt.circuit: steps < 1";
  let size = tree_size height in
  let n = num_qubits ~height in
  let b =
    C.Builder.create ~name:(Printf.sprintf "bwt%d" n) ~num_qubits:n ()
  in
  let walker = n - 1 in
  let node tree i = (tree * size) + i in
  let leaves = List.init (1 lsl (height - 1)) (fun i -> (size / 2) + i) in
  let rng = Qec_util.Rng.create seed in
  let weld =
    let shuffled = Array.of_list leaves in
    Qec_util.Rng.shuffle_in_place rng shuffled;
    List.mapi (fun i leaf -> (node 0 leaf, node 1 shuffled.(i))) leaves
  in
  (* Entry superposition on the roots and the walker. *)
  C.Builder.add b (G.H (node 0 0));
  C.Builder.add b (G.H (node 1 0));
  C.Builder.add b (G.H walker);
  (* Each oracle step advances the walk one level: parallel CXs along that
     level's tree edges, then a walker update that serializes the steps. *)
  let level_edges tree l =
    (* edges from level l-1 parents to level l children *)
    let first = (1 lsl l) - 1 in
    List.init (1 lsl l) (fun i ->
        let child = first + i in
        let parent = (child - 1) / 2 in
        (node tree parent, node tree child))
  in
  for k = 0 to steps - 1 do
    let phase = k mod ((2 * height) - 1) in
    if phase < height - 1 then
      (* descend tree A *)
      List.iter (fun (p, c) -> C.Builder.add b (G.Cx (p, c)))
        (level_edges 0 (phase + 1))
    else if phase = height - 1 then
      (* cross the weld *)
      List.iter (fun (la, lb) -> C.Builder.add b (G.Cx (la, lb))) weld
    else
      (* ascend tree B *)
      List.iter (fun (p, c) -> C.Builder.add b (G.Cx (c, p)))
        (level_edges 1 ((2 * height) - 1 - phase));
    (* walker coin + query marker: serial dependence between steps *)
    C.Builder.add b (G.H walker);
    C.Builder.add b (G.Cx (node 0 0, walker))
  done;
  C.Builder.finish b
