(** QAOA MaxCut circuits on random 3-regular graphs.

    Per round: for every graph edge a ZZ phase separation (CX · Rz · CX),
    then an Rx mixer on every qubit. Random-regular connectivity makes the
    CX fronts spatially scattered — the congestion-prone pattern where the
    layout optimizer matters. Generation is deterministic in [seed]. *)

val circuit : ?rounds:int -> ?degree:int -> ?seed:int -> int -> Qec_circuit.Circuit.t
(** [circuit n] with [rounds] QAOA rounds (default 8) on a random
    [degree]-regular graph (default 3). Raises [Invalid_argument] if
    [n < 4], [rounds < 1], or no [degree]-regular graph exists (n·degree
    must be even, degree < n). *)

val edges : ?degree:int -> ?seed:int -> int -> (int * int) list
(** The underlying random regular graph (pairs with [fst < snd]),
    deterministic in [seed]. *)
