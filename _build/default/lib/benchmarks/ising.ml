module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let circuit ?(steps = 2) n =
  if n < 2 then invalid_arg "Ising.circuit: n < 2";
  if steps < 1 then invalid_arg "Ising.circuit: steps < 1";
  let b = C.Builder.create ~name:(Printf.sprintf "im%d" n) ~num_qubits:n () in
  let zz a b' =
    C.Builder.add b (G.Cx (a, b'));
    C.Builder.add b (G.Rz (b', 0.3));
    C.Builder.add b (G.Cx (a, b'))
  in
  for _ = 1 to steps do
    for q = 0 to n - 1 do
      C.Builder.add b (G.Rx (q, 0.7))
    done;
    let q = ref 0 in
    while !q + 1 < n do
      zz !q (!q + 1);
      q := !q + 2
    done;
    q := 1;
    while !q + 1 < n do
      zz !q (!q + 1);
      q := !q + 2
    done
  done;
  C.Builder.finish b
