module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let cuccaro_num_qubits ~bits = (2 * bits) + 2

(* Cuccaro, Draper, Kutin & Moulton, "A new quantum ripple-carry addition
   circuit". Layout: carry-in, then interleaved b_i, a_i pairs, carry-out
   last. MAJ computes carries forward; UMA uncomputes them backward. *)
let cuccaro_adder bits =
  if bits < 1 then invalid_arg "Arith.cuccaro_adder: bits < 1";
  let n = cuccaro_num_qubits ~bits in
  let builder =
    C.Builder.create ~name:(Printf.sprintf "cuccaro%d" bits) ~num_qubits:n ()
  in
  let cin = 0 in
  let b i = 1 + (2 * i) in
  let a i = 2 + (2 * i) in
  let cout = n - 1 in
  let maj x y z =
    C.Builder.add builder (G.Cx (z, y));
    C.Builder.add builder (G.Cx (z, x));
    C.Builder.add builder (G.Ccx (x, y, z))
  in
  let uma x y z =
    C.Builder.add builder (G.Ccx (x, y, z));
    C.Builder.add builder (G.Cx (z, x));
    C.Builder.add builder (G.Cx (x, y))
  in
  maj cin (b 0) (a 0);
  for i = 1 to bits - 1 do
    maj (a (i - 1)) (b i) (a i)
  done;
  C.Builder.add builder (G.Cx (a (bits - 1), cout));
  for i = bits - 1 downto 1 do
    uma (a (i - 1)) (b i) (a i)
  done;
  uma cin (b 0) (a 0);
  C.Builder.finish builder

let draper_num_qubits ~bits = 2 * bits

(* Draper, "Addition on a quantum computer": QFT the target register, fan
   controlled phases in from the source register, inverse QFT. *)
let draper_adder bits =
  if bits < 1 then invalid_arg "Arith.draper_adder: bits < 1";
  let n = draper_num_qubits ~bits in
  let builder =
    C.Builder.create ~name:(Printf.sprintf "draper%d" bits) ~num_qubits:n ()
  in
  let a i = i in
  let b i = bits + i in
  let angle k = Float.pi /. float_of_int (1 lsl k) in
  (* Fourier stage in LSB-last order: after it, qubit b_i carries the
     phase 2pi (x mod 2^(i+1)) / 2^(i+1), which is linear under addition —
     the property Draper's phase-space adder needs. (The Qft benchmark
     module uses the opposite processing order, under which per-qubit
     phase addition is not linear; see test/test_sim.ml.) *)
  for i = bits - 1 downto 0 do
    C.Builder.add builder (G.H (b i));
    for j = i - 1 downto 0 do
      C.Builder.add builder (G.Cphase (b j, b i, angle (i - j)))
    done
  done;
  (* phase additions controlled by a: qubit b_i gains 2pi a / 2^(i+1) *)
  for i = 0 to bits - 1 do
    for j = 0 to i do
      C.Builder.add builder (G.Cphase (a j, b i, angle (i - j)))
    done
  done;
  (* inverse Fourier stage: exact reverse with negated angles *)
  for i = 0 to bits - 1 do
    for j = 0 to i - 1 do
      C.Builder.add builder (G.Cphase (b j, b i, -.angle (i - j)))
    done;
    C.Builder.add builder (G.H (b i))
  done;
  C.Builder.finish builder
