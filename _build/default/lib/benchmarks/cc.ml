module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let circuit n =
  if n < 2 then invalid_arg "Cc.circuit: n < 2";
  let b = C.Builder.create ~name:(Printf.sprintf "cc%d" n) ~num_qubits:n () in
  let anc = n - 1 in
  for q = 0 to n - 2 do
    C.Builder.add b (G.H q)
  done;
  for q = 0 to n - 2 do
    C.Builder.add b (G.Cx (q, anc))
  done;
  C.Builder.finish b
