lib/benchmarks/bwt.ml: Array List Option Printf Qec_circuit Qec_util
