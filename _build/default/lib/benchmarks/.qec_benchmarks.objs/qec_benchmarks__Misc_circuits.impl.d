lib/benchmarks/misc_circuits.ml: Option Printf Qec_circuit Qec_util
