lib/benchmarks/shor.mli: Qec_circuit
