lib/benchmarks/bv.mli: Qec_circuit
