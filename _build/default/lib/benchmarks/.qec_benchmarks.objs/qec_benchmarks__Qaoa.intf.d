lib/benchmarks/qaoa.mli: Qec_circuit
