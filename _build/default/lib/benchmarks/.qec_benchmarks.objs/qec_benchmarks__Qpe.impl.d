lib/benchmarks/qpe.ml: Float Printf Qec_circuit
