lib/benchmarks/arith.mli: Qec_circuit
