lib/benchmarks/qft.mli: Qec_circuit
