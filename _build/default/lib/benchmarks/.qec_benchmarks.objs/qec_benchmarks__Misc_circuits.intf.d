lib/benchmarks/misc_circuits.mli: Qec_circuit
