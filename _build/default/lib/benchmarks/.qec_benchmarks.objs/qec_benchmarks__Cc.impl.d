lib/benchmarks/cc.ml: Printf Qec_circuit
