lib/benchmarks/ising.mli: Qec_circuit
