lib/benchmarks/qft.ml: Float Printf Qec_circuit
