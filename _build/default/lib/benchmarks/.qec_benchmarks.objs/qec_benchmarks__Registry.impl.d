lib/benchmarks/registry.ml: Arith Building_blocks Bv Bwt Cc Grover Ising List Misc_circuits Qaoa Qec_circuit Qft Qpe Shor String
