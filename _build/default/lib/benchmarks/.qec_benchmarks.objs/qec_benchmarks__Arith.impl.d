lib/benchmarks/arith.ml: Float Printf Qec_circuit
