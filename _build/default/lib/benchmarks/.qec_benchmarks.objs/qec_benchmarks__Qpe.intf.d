lib/benchmarks/qpe.mli: Qec_circuit
