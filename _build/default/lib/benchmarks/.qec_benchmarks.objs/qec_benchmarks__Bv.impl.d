lib/benchmarks/bv.ml: Array Printf Qec_circuit
