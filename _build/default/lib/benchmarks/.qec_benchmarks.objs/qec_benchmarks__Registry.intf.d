lib/benchmarks/registry.mli: Qec_circuit
