lib/benchmarks/shor.ml: Float Option Printf Qec_circuit
