lib/benchmarks/bwt.mli: Qec_circuit
