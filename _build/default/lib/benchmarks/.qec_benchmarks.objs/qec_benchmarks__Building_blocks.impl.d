lib/benchmarks/building_blocks.ml: List Qec_circuit Qec_util
