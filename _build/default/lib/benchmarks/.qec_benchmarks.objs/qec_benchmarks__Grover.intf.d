lib/benchmarks/grover.mli: Qec_circuit
