lib/benchmarks/cc.mli: Qec_circuit
