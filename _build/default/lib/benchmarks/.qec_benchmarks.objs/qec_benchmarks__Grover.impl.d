lib/benchmarks/grover.ml: Float List Option Printf Qec_circuit
