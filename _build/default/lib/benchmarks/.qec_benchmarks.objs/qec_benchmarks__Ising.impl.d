lib/benchmarks/ising.ml: Printf Qec_circuit
