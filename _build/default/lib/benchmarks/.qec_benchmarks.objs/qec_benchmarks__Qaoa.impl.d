lib/benchmarks/qaoa.ml: Array Hashtbl List Printf Qec_circuit Qec_util
