lib/benchmarks/building_blocks.mli: Qec_circuit
