(** Quantum Fourier transform circuits.

    The textbook construction: for each target qubit [i], a Hadamard
    followed by controlled-phase rotations from every later qubit [j] with
    angle π/2{^j-i}. Gate count n(n+1)/2, matching the paper's QFT-200 ≈
    20.1K gates. No terminal swap network (the paper's counts exclude
    it; pass [~with_swaps:true] to include one). *)

val circuit : ?with_swaps:bool -> int -> Qec_circuit.Circuit.t
(** [circuit n] is the n-qubit QFT. Raises [Invalid_argument] if [n < 1]. *)
