(** Shor's-algorithm period-finding circuits (Beauregard layout).

    For an [bits]-bit modulus the circuit uses [2·bits + 3] qubits:
    a [2·bits] exponent register, a [bits]-qubit work register, and carry /
    walker ancillas. Each exponent qubit controls a modular multiplication
    realized as Draper QFT-adder cascades (controlled-phase fans into the
    work register); the final inverse QFT on the exponent register is the
    semiclassical (measurement-driven, single-qubit) variant, as in
    Beauregard. [multipliers] caps how many controlled multiplications are
    emitted — the paper's 471-qubit / 36.5K-gate instance corresponds to a
    truncated exponentiation, and the default reproduces that density. *)

val circuit : ?multipliers:int -> bits:int -> unit -> Qec_circuit.Circuit.t
(** Raises [Invalid_argument] if [bits < 2] or [multipliers < 1]. *)

val num_qubits : bits:int -> int
(** [2·bits + 3]. *)
