module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

(* Configuration (pairing) model: shuffle n*degree stubs and pair them off,
   rejecting attempts with self-loops or parallel edges. For degree 3 a
   constant fraction of attempts is simple, so bounded retry suffices. *)
let edges ?(degree = 3) ?(seed = 42) n =
  if n < 4 then invalid_arg "Qaoa.edges: n < 4";
  if degree < 1 || degree >= n then invalid_arg "Qaoa.edges: bad degree";
  if n * degree mod 2 <> 0 then
    invalid_arg "Qaoa.edges: n * degree must be even";
  let rng = Qec_util.Rng.create seed in
  let stubs = Array.init (n * degree) (fun i -> i / degree) in
  let attempt () =
    Qec_util.Rng.shuffle_in_place rng stubs;
    let seen = Hashtbl.create (n * degree) in
    let rec pair i acc =
      if i >= Array.length stubs then Some (List.rev acc)
      else
        let a = stubs.(i) and b = stubs.(i + 1) in
        if a = b then None
        else
          let key = (min a b, max a b) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            pair (i + 2) (key :: acc)
          end
    in
    pair 0 []
  in
  let rec retry k =
    if k = 0 then
      invalid_arg "Qaoa.edges: failed to sample a simple regular graph"
    else match attempt () with Some e -> e | None -> retry (k - 1)
  in
  List.sort compare (retry 1000)

(* Greedy edge coloring: group edges into matchings so each group's ZZ
   gadgets are exactly parallel — how QAOA phase separators are emitted in
   practice, and what exposes the circuit's communication parallelism. *)
let color_edges es =
  let classes = ref [] in
  List.iter
    (fun (u, v) ->
      let rec place = function
        | [] -> classes := !classes @ [ ref [ (u, v) ] ]
        | c :: rest ->
          if List.exists (fun (a, b) -> a = u || b = u || a = v || b = v) !c
          then place rest
          else c := (u, v) :: !c
      in
      place !classes)
    es;
  List.map (fun c -> List.rev !c) !classes

let circuit ?(rounds = 8) ?(degree = 3) ?(seed = 42) n =
  if rounds < 1 then invalid_arg "Qaoa.circuit: rounds < 1";
  let es = List.concat (color_edges (edges ~degree ~seed n)) in
  let b =
    C.Builder.create ~name:(Printf.sprintf "qaoa%d" n) ~num_qubits:n ()
  in
  for q = 0 to n - 1 do
    C.Builder.add b (G.H q)
  done;
  for r = 1 to rounds do
    let gamma = 0.1 *. float_of_int r in
    List.iter
      (fun (u, v) ->
        C.Builder.add b (G.Cx (u, v));
        C.Builder.add b (G.Rz (v, gamma));
        C.Builder.add b (G.Cx (u, v)))
      es;
    for q = 0 to n - 1 do
      C.Builder.add b (G.Rx (q, 0.2 *. float_of_int r))
    done
  done;
  C.Builder.finish b
