module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let num_qubits ~precision = precision + 1

let circuit ?(phase = 1. /. 3.) ~precision () =
  if precision < 1 then invalid_arg "Qpe.circuit: precision < 1";
  if phase < 0. || phase >= 1. then invalid_arg "Qpe.circuit: phase not in [0,1)";
  let n = num_qubits ~precision in
  let b =
    C.Builder.create ~name:(Printf.sprintf "qpe%d" n) ~num_qubits:n ()
  in
  let target = precision in
  (* eigenstate |1> of the phase rotation *)
  C.Builder.add b (G.X target);
  for k = 0 to precision - 1 do
    C.Builder.add b (G.H k)
  done;
  (* counting qubit k accumulates U^(2^k) *)
  for k = 0 to precision - 1 do
    let theta = 2. *. Float.pi *. phase *. float_of_int (1 lsl k) in
    C.Builder.add b (G.Cphase (k, target, theta))
  done;
  (* inverse QFT on the counting register (bit k weighs 2^k) *)
  for i = precision - 1 downto 0 do
    for j = precision - 1 downto i + 1 do
      let angle = -.Float.pi /. float_of_int (1 lsl (j - i)) in
      C.Builder.add b (G.Cphase (j, i, angle))
    done;
    C.Builder.add b (G.H i)
  done;
  (* undo the QFT bit reversal so the counting register reads the
     estimate in little-endian order *)
  for k = 0 to (precision / 2) - 1 do
    C.Builder.add b (G.Swap (k, precision - 1 - k))
  done;
  for k = 0 to precision - 1 do
    C.Builder.add b (G.Measure k)
  done;
  C.Builder.finish b
