(** Arithmetic building-block circuits.

    The paper's "building blocks" category is made of exactly this kind of
    reversible arithmetic (adders, comparators, square roots). Two classic
    adders are provided:

    - the Cuccaro ripple-carry adder (MAJ/UMA ladders of Toffolis): long
      serial dependence chains, minimal communication parallelism;
    - the Draper adder (QFT, controlled-phase fan-in, inverse QFT): wide
      concurrent controlled-phase fronts, communication heavy.

    Together they bracket the two workload regimes the scheduler sees. *)

val cuccaro_adder : int -> Qec_circuit.Circuit.t
(** [cuccaro_adder bits] adds two [bits]-bit registers using
    [2*bits + 2] qubits (carry-in, a, b, carry-out). Contains [Ccx] gates;
    lower with {!Qec_circuit.Decompose.to_scheduler_gates} or let the
    scheduler do it. Raises [Invalid_argument] if [bits < 1]. *)

val cuccaro_num_qubits : bits:int -> int

val draper_adder : int -> Qec_circuit.Circuit.t
(** [draper_adder bits] adds register a into register b via the QFT:
    [2*bits] qubits. Raises [Invalid_argument] if [bits < 1]. *)

val draper_num_qubits : bits:int -> int
