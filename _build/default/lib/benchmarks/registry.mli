(** Name-based access to every benchmark family, for the CLI and the
    benchmark harness. *)

type entry = {
  name : string;  (** family name, e.g. "qft" *)
  description : string;
  sized : int -> Qec_circuit.Circuit.t;
      (** instantiate at a qubit count; raises [Invalid_argument] for
          unsupported sizes *)
}

val families : entry list
(** qft, bv, cc, im (Ising), qaoa, bwt, adder (Cuccaro), qftadd (Draper),
    grover, ghz, hshift, randct, shor — each sized by total qubit count.
    For bwt/shor/adder the requested size is rounded to the nearest
    realizable register layout. *)

val find_family : string -> entry option

val fixed : (string * (unit -> Qec_circuit.Circuit.t)) list
(** The RevLib building blocks plus canonical paper instances (e.g.
    "shor471"). *)

val build : string -> Qec_circuit.Circuit.t
(** [build "qft200"] or [build "urf2_277"]: a family name followed by a
    size, or a fixed name. Raises [Not_found] on unknown names,
    [Invalid_argument] on bad sizes. *)

val all_names : unit -> string list
(** Family names (with <n> placeholder) and fixed names, for --help. *)
