module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

let circuit ?secret n =
  if n < 2 then invalid_arg "Bv.circuit: n < 2";
  let secret =
    match secret with
    | None -> Array.make (n - 1) true
    | Some s ->
      if Array.length s <> n - 1 then
        invalid_arg "Bv.circuit: secret length must be n-1";
      s
  in
  let b = C.Builder.create ~name:(Printf.sprintf "bv%d" n) ~num_qubits:n () in
  let anc = n - 1 in
  for q = 0 to n - 1 do
    C.Builder.add b (G.H q)
  done;
  Array.iteri (fun i bit -> if bit then C.Builder.add b (G.Cx (i, anc))) secret;
  for q = 0 to n - 1 do
    C.Builder.add b (G.H q)
  done;
  C.Builder.finish b
