(** Synthetic stand-ins for the RevLib "building block" benchmarks.

    The paper's first benchmark category (Table 2, "Building Blocks") are
    RevLib reversible functions: comparators, adders, square roots, and
    unstructured reversible functions (urf series). The RevLib netlists are not
    redistributable here, so each entry is a deterministic random MCT
    (multi-controlled Toffoli) cascade with the {e same qubit count} as the
    original and an elementary-gate count calibrated to Table 2 after
    Clifford+T lowering. Reversible MCT cascades on a handful of qubits
    share the originals' scheduling profile: dense reuse of few qubits,
    long dependence chains, low communication parallelism.

    All circuits are returned {e already lowered} by
    [Decompose.to_scheduler_gates]. *)

val names : string list
(** The Table 1/2 entries: 4gt11_8, 4gt5_75, alu-v0_26, rd32-v0, sqrt8_260,
    squar5_261, squar7, urf1_278, urf2_277, urf5_158, urf5_280. *)

val by_name : string -> Qec_circuit.Circuit.t
(** Raises [Not_found] for unknown names. *)

val random_mct :
  ?seed:int -> qubits:int -> target_gates:int -> name:string -> unit ->
  Qec_circuit.Circuit.t
(** A random reversible MCT cascade, lowered to scheduler gates, with
    approximately [target_gates] elementary gates. Raises
    [Invalid_argument] if [qubits < 3] or [target_gates < 1]. *)
