(** Transverse-field Ising model Trotter circuits (the paper's Fig. 7
    example of {e high} CX parallelism: n/2 simultaneous CX gates).

    Per Trotter step: single-qubit rotations on every site, then ZZ
    couplings (CX · Rz · CX) on even-indexed nearest-neighbor pairs, then
    on odd-indexed pairs. Coupling is along a 1-D chain, so the coupling
    graph has maximal degree 2 — the case the paper's initial placement
    handles optimally with a snake embedding. *)

val circuit : ?steps:int -> int -> Qec_circuit.Circuit.t
(** [circuit n] with [steps] Trotter steps (default 2). Raises
    [Invalid_argument] if [n < 2] or [steps < 1]. *)
