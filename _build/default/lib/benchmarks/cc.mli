(** Counterfeit-coin finding circuits.

    The balance-oracle query: a superposed selection over [n-1] coin
    qubits, each coupled once to the shared balance ancilla. Like BV, all
    oracle CXs share the ancilla, so communication parallelism is minimal;
    gate count 2(n-1), matching the paper's CC-100 = 198 gates. *)

val circuit : int -> Qec_circuit.Circuit.t
(** [circuit n]: [n-1] coin qubits plus the ancilla at index [n-1]. Raises
    [Invalid_argument] if [n < 2]. *)
