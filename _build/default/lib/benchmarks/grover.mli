(** Grover search circuits.

    Standard structure: uniform superposition, then [iterations] rounds of
    (phase oracle marking one basis state) · (diffusion operator). Both the
    oracle and the diffusion use a multi-controlled Z, realized as
    [H target; MCX-ladder; H target] over [n - 3] ancilla qubits appended
    after the search register — heavy multi-qubit gates whose Clifford+T
    lowering produces long dependence chains. The circuit therefore uses
    [n + max 0 (n-3)] qubits in total. *)

val circuit :
  ?iterations:int -> ?marked:int -> int -> Qec_circuit.Circuit.t
(** [circuit n] over [n] search qubits. [iterations] defaults to
    [round(pi/4 * sqrt(2^n))] capped at 8; [marked] (default all-ones)
    selects the marked state's bit pattern. Raises [Invalid_argument] if
    [n < 3] or [marked] is out of range. *)
