(** SVG rendering of schedule rounds.

    A publication-quality counterpart to the ASCII
    {!Qec_lattice.Render}: tiles as squares, logical qubits labelled,
    braiding paths as colored polylines along the channel graph, swap
    layers as double-headed connectors. Output is a standalone [.svg]
    document. *)

val round_svg : Autobraid.Trace.t -> int -> string
(** Render one round of the trace (with the placement current at that
    round). Raises [Invalid_argument] if the index is out of range. *)

val save_round : string -> Autobraid.Trace.t -> int -> unit
(** Write {!round_svg} to a file. *)
