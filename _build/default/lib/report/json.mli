(** Minimal JSON document builder and printer (no external dependency).

    Enough for exporting results and traces: construction, escaping, and
    deterministic compact or indented printing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two spaces.
    Floats print with enough digits to round-trip; NaN/infinities become
    [null] (JSON has no spelling for them). *)

val member : string -> t -> t option
(** [member key (Obj ...)] — convenience for tests. [None] on missing keys
    or non-objects. *)
