lib/report/export.ml: Array Autobraid Buffer Json List Printf Qec_circuit Qec_lattice
