lib/report/svg.ml: Array Autobraid Buffer Fun List Printf Qec_lattice String
