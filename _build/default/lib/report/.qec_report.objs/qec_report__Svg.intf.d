lib/report/svg.mli: Autobraid
