lib/report/export.mli: Autobraid Json Qec_circuit Qec_lattice
