lib/report/json.mli:
