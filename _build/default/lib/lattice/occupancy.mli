(** Per-round occupancy of routing vertices.

    Tracks which channel vertices are claimed by braiding paths during the
    current scheduling round, and accumulates the utilization statistics
    reported in Fig. 17. *)

type t

val create : Grid.t -> t
(** All vertices free. *)

val grid : t -> Grid.t

val is_free : t -> int -> bool

val reserve_path : t -> Path.t -> unit
(** Claim every vertex of the path. Raises [Invalid_argument] if any is
    already claimed (caller must route on free vertices only). *)

val release_path : t -> Path.t -> unit
(** Release every vertex of the path (used when a tentative schedule is
    rolled back before a swap round). Vertices must be currently
    claimed. *)

val clear : t -> unit
(** Free everything — called between rounds. *)

val occupied_count : t -> int

val utilization : t -> float
(** Occupied vertices over total vertices, in [0, 1]. *)

val snapshot : t -> Qec_util.Bitset.t
(** Copy of the occupancy bits (for tests and for interference checks). *)
