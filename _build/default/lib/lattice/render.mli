(** ASCII rendering of the braiding lattice.

    Draws the tile grid with qubit occupants and overlays braiding paths
    on the channel graph — useful for debugging schedules and for the CLI
    [trace] command. Cells print their qubit id (or [..] when empty);
    channel vertices print [+] when free and [#] when used by a path;
    path edges are drawn along the channels. *)

val grid_to_string :
  ?paths:Path.t list -> ?placement:Placement.t -> Grid.t -> string
(** Multi-line drawing (trailing newline included). [paths] vertices and
    edges are marked; [placement] labels occupied cells with qubit ids
    (modulo 100, for width). *)

val print : ?paths:Path.t list -> ?placement:Placement.t -> Grid.t -> unit
