module Int_set = Set.Make (Int)

type t = { verts : int list; vset : Int_set.t }

let of_vertices grid verts =
  if verts = [] then invalid_arg "Path.of_vertices: empty";
  let rec check_adjacent = function
    | a :: (b :: _ as rest) ->
      if Grid.vertex_distance grid a b <> 1 then
        invalid_arg
          (Printf.sprintf "Path.of_vertices: v%d and v%d not adjacent" a b);
      check_adjacent rest
    | [ _ ] | [] -> ()
  in
  check_adjacent verts;
  let vset = Int_set.of_list verts in
  if Int_set.cardinal vset <> List.length verts then
    invalid_arg "Path.of_vertices: repeated vertex";
  { verts; vset }

let vertices t = t.verts
let length t = List.length t.verts
let source t = List.hd t.verts
let target t = List.nth t.verts (length t - 1)
let mem t v = Int_set.mem v t.vset

let disjoint a b =
  (* Iterate over the smaller set. *)
  let small, big =
    if Int_set.cardinal a.vset <= Int_set.cardinal b.vset then (a, b)
    else (b, a)
  in
  not (Int_set.exists (fun v -> Int_set.mem v big.vset) small.vset)

let is_corner grid cell v = Array.exists (( = ) v) (Grid.cell_corners grid cell)

let connects_cells grid t ca cb =
  let s = source t and e = target t in
  (is_corner grid ca s && is_corner grid cb e)
  || (is_corner grid cb s && is_corner grid ca e)

let within_bbox grid (box : Bbox.t) t =
  List.for_all
    (fun v ->
      let x, y = Grid.vertex_xy grid v in
      box.x0 <= x && x <= box.x1 + 1 && box.y0 <= y && y <= box.y1 + 1)
    t.verts

let pp grid ppf t =
  Format.fprintf ppf "@[<h>";
  List.iteri
    (fun i v ->
      let x, y = Grid.vertex_xy grid v in
      if i > 0 then Format.fprintf ppf " -> ";
      Format.fprintf ppf "(%d,%d)" x y)
    t.verts;
  Format.fprintf ppf "@]"
