type t = { grid : Grid.t; bits : Qec_util.Bitset.t }

let create grid = { grid; bits = Qec_util.Bitset.create (Grid.num_vertices grid) }

let grid t = t.grid

let is_free t v = not (Qec_util.Bitset.mem t.bits v)

let reserve_path t p =
  List.iter
    (fun v ->
      if Qec_util.Bitset.mem t.bits v then
        invalid_arg (Printf.sprintf "Occupancy.reserve_path: v%d taken" v))
    (Path.vertices p);
  List.iter (fun v -> Qec_util.Bitset.add t.bits v) (Path.vertices p)

let release_path t p =
  List.iter
    (fun v ->
      if not (Qec_util.Bitset.mem t.bits v) then
        invalid_arg (Printf.sprintf "Occupancy.release_path: v%d free" v))
    (Path.vertices p);
  List.iter (fun v -> Qec_util.Bitset.remove t.bits v) (Path.vertices p)

let clear t = Qec_util.Bitset.clear t.bits

let occupied_count t = Qec_util.Bitset.cardinal t.bits

let utilization t =
  float_of_int (occupied_count t) /. float_of_int (Grid.num_vertices t.grid)

let snapshot t = Qec_util.Bitset.copy t.bits
