type t = {
  grid : Grid.t;
  qubit_cell : int array; (* qubit -> cell *)
  cell_qubit : int array; (* cell -> qubit, or -1 *)
}

let create grid ~num_qubits ~cells =
  if Array.length cells <> num_qubits then
    invalid_arg "Placement.create: cells array length mismatch";
  if num_qubits > Grid.num_cells grid then
    invalid_arg "Placement.create: more qubits than cells";
  let cell_qubit = Array.make (Grid.num_cells grid) (-1) in
  Array.iteri
    (fun q c ->
      if c < 0 || c >= Grid.num_cells grid then
        invalid_arg "Placement.create: cell out of range";
      if cell_qubit.(c) >= 0 then
        invalid_arg "Placement.create: duplicate cell assignment";
      cell_qubit.(c) <- q)
    cells;
  { grid; qubit_cell = Array.copy cells; cell_qubit }

let identity grid ~num_qubits =
  create grid ~num_qubits ~cells:(Array.init num_qubits (fun q -> q))

let random rng grid ~num_qubits =
  let cells =
    Qec_util.Rng.sample_without_replacement rng num_qubits
      (Grid.num_cells grid)
  in
  create grid ~num_qubits ~cells:(Array.of_list cells)

(* Boustrophedon cell order: row 0 left-to-right, row 1 right-to-left, ... *)
let snake_cells grid =
  let l = Grid.side grid in
  let out = ref [] in
  for y = l - 1 downto 0 do
    for i = l - 1 downto 0 do
      let x = if y mod 2 = 0 then i else l - 1 - i in
      out := Grid.cell_id grid ~x ~y :: !out
    done
  done;
  Array.of_list !out

let of_order grid qs =
  let n = List.length qs in
  let snake = snake_cells grid in
  if n > Array.length snake then
    invalid_arg "Placement.of_order: more qubits than cells";
  let cells = Array.make n (-1) in
  List.iteri
    (fun i q ->
      if q < 0 || q >= n then invalid_arg "Placement.of_order: bad qubit id";
      if cells.(q) >= 0 then invalid_arg "Placement.of_order: duplicate qubit";
      cells.(q) <- snake.(i))
    qs;
  create grid ~num_qubits:n ~cells

let copy t =
  {
    grid = t.grid;
    qubit_cell = Array.copy t.qubit_cell;
    cell_qubit = Array.copy t.cell_qubit;
  }

let grid t = t.grid
let num_qubits t = Array.length t.qubit_cell
let cell_of_qubit t q = t.qubit_cell.(q)

let qubit_of_cell t c =
  let q = t.cell_qubit.(c) in
  if q < 0 then None else Some q

let swap_qubits t a b =
  let ca = t.qubit_cell.(a) and cb = t.qubit_cell.(b) in
  t.qubit_cell.(a) <- cb;
  t.qubit_cell.(b) <- ca;
  t.cell_qubit.(ca) <- b;
  t.cell_qubit.(cb) <- a

let move_qubit t ~qubit ~cell =
  if t.cell_qubit.(cell) >= 0 then
    invalid_arg "Placement.move_qubit: cell occupied";
  let old = t.qubit_cell.(qubit) in
  t.cell_qubit.(old) <- -1;
  t.qubit_cell.(qubit) <- cell;
  t.cell_qubit.(cell) <- qubit

let qubit_cell_xy t q = Grid.cell_xy t.grid t.qubit_cell.(q)

let distance t a b =
  Grid.cell_distance t.grid t.qubit_cell.(a) t.qubit_cell.(b)

let cx_bbox t a b = Bbox.of_cells (qubit_cell_xy t a) (qubit_cell_xy t b)

let to_array t = Array.copy t.qubit_cell

let equal a b = a.qubit_cell = b.qubit_cell
