type t = { l : int; vside : int (* l + 1 *) }

let create l =
  if l < 1 then invalid_arg "Grid.create: side < 1";
  { l; vside = l + 1 }

let side t = t.l
let num_cells t = t.l * t.l
let num_vertices t = t.vside * t.vside

let vertex_id t ~x ~y =
  if x < 0 || y < 0 || x >= t.vside || y >= t.vside then
    invalid_arg "Grid.vertex_id: out of range";
  (y * t.vside) + x

let vertex_xy t v =
  if v < 0 || v >= num_vertices t then invalid_arg "Grid.vertex_xy";
  (v mod t.vside, v / t.vside)

let cell_id t ~x ~y =
  if x < 0 || y < 0 || x >= t.l || y >= t.l then
    invalid_arg "Grid.cell_id: out of range";
  (y * t.l) + x

let cell_xy t c =
  if c < 0 || c >= num_cells t then invalid_arg "Grid.cell_xy";
  (c mod t.l, c / t.l)

let cell_corners t c =
  let x, y = cell_xy t c in
  [|
    vertex_id t ~x ~y;
    vertex_id t ~x:(x + 1) ~y;
    vertex_id t ~x ~y:(y + 1);
    vertex_id t ~x:(x + 1) ~y:(y + 1);
  |]

let vertex_neighbors t v =
  let x, y = vertex_xy t v in
  let acc = ref [] in
  (* Collected in descending id order, so the result is ascending. *)
  if y + 1 < t.vside then acc := vertex_id t ~x ~y:(y + 1) :: !acc;
  if x + 1 < t.vside then acc := vertex_id t ~x:(x + 1) ~y :: !acc;
  if x > 0 then acc := vertex_id t ~x:(x - 1) ~y :: !acc;
  if y > 0 then acc := vertex_id t ~x ~y:(y - 1) :: !acc;
  !acc

let vertex_distance t a b =
  let ax, ay = vertex_xy t a and bx, by = vertex_xy t b in
  abs (ax - bx) + abs (ay - by)

let cell_distance t a b =
  let ax, ay = cell_xy t a and bx, by = cell_xy t b in
  abs (ax - bx) + abs (ay - by)

let cell_to_cell_vertex_distance t a b =
  let ca = cell_corners t a and cb = cell_corners t b in
  let best = ref max_int in
  Array.iter
    (fun va ->
      Array.iter
        (fun vb -> best := min !best (vertex_distance t va vb))
        cb)
    ca;
  !best
