(** Logical-qubit placement: a (partial) bijection qubit ↔ cell.

    The lattice has [L² >= N] cells; every qubit occupies exactly one cell
    and a cell holds at most one qubit. AutoBraid changes the placement
    dynamically through SWAPs (§3.2 "Qubit Layout"); the baseline keeps it
    static. *)

type t

val create : Grid.t -> num_qubits:int -> cells:int array -> t
(** [cells.(q)] is qubit [q]'s cell. Raises [Invalid_argument] on
    out-of-range cells, duplicates, or [num_qubits > num_cells]. *)

val identity : Grid.t -> num_qubits:int -> t
(** Qubit [q] on cell [q] (row-major). *)

val random : Qec_util.Rng.t -> Grid.t -> num_qubits:int -> t
(** Uniformly random distinct cells. *)

val of_order : Grid.t -> int list -> t
(** [of_order grid qs] lays qubits out along the boustrophedon (snake)
    cell order of the grid: the first qubit of [qs] on the first snake
    cell, etc. Every qubit must appear exactly once. Neighbors in [qs] end
    up in adjacent cells — used for degree-2 coupling graphs and the
    Maslov specialisation. *)

val copy : t -> t

val grid : t -> Grid.t

val num_qubits : t -> int

val cell_of_qubit : t -> int -> int

val qubit_of_cell : t -> int -> int option
(** [None] for unoccupied cells. *)

val swap_qubits : t -> int -> int -> unit
(** Exchange the cells of two qubits. *)

val move_qubit : t -> qubit:int -> cell:int -> unit
(** Relocate a qubit to an {e empty} cell. Raises [Invalid_argument] if
    the cell is occupied by another qubit. *)

val qubit_cell_xy : t -> int -> int * int
(** Cell coordinates of a qubit's tile. *)

val distance : t -> int -> int -> int
(** Manhattan cell distance between two qubits' tiles. *)

val cx_bbox : t -> int -> int -> Bbox.t
(** Outer bounding box of a two-qubit gate between the given qubits. *)

val to_array : t -> int array
(** Fresh array mapping qubit -> cell. *)

val equal : t -> t -> bool
