module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module Int_set = Set.Make (Int)

let norm a b = if a < b then (a, b) else (b, a)

let collect_marks paths =
  List.fold_left
    (fun (verts, edges) p ->
      let vs = Path.vertices p in
      let verts = List.fold_left (fun s v -> Int_set.add v s) verts vs in
      let rec walk edges = function
        | a :: (b :: _ as rest) -> walk (Pair_set.add (norm a b) edges) rest
        | [ _ ] | [] -> edges
      in
      (verts, walk edges vs))
    (Int_set.empty, Pair_set.empty)
    paths

let grid_to_string ?(paths = []) ?placement grid =
  let l = Grid.side grid in
  let marked_verts, marked_edges = collect_marks paths in
  let vertex x y = Grid.vertex_id grid ~x ~y in
  let vsym v = if Int_set.mem v marked_verts then "#" else "+" in
  let hedge x y =
    (* edge between vertex (x,y) and (x+1,y) *)
    if Pair_set.mem (norm (vertex x y) (vertex (x + 1) y)) marked_edges then
      "==="
    else "   "
  in
  let vedge x y =
    (* edge between vertex (x,y) and (x,y+1) *)
    if Pair_set.mem (norm (vertex x y) (vertex x (y + 1))) marked_edges then
      "I"
    else " "
  in
  let cell_label x y =
    match placement with
    | None -> "   "
    | Some p -> (
      match Placement.qubit_of_cell p (Grid.cell_id grid ~x ~y) with
      | Some q -> Printf.sprintf "q%02d" (q mod 100)
      | None -> " . ")
  in
  let buf = Buffer.create 1024 in
  for y = 0 to l do
    (* vertex row *)
    for x = 0 to l do
      Buffer.add_string buf (vsym (vertex x y));
      if x < l then Buffer.add_string buf (hedge x y)
    done;
    Buffer.add_char buf '\n';
    (* cell row *)
    if y < l then begin
      for x = 0 to l do
        Buffer.add_string buf (vedge x y);
        if x < l then Buffer.add_string buf (cell_label x y)
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let print ?paths ?placement grid =
  print_string (grid_to_string ?paths ?placement grid)
