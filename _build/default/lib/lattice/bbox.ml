type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make ~x0 ~y0 ~x1 ~y1 =
  if x0 > x1 || y0 > y1 then invalid_arg "Bbox.make: inverted box";
  { x0; y0; x1; y1 }

let of_cells (ax, ay) (bx, by) =
  { x0 = min ax bx; y0 = min ay by; x1 = max ax bx; y1 = max ay by }

let of_points = function
  | [] -> invalid_arg "Bbox.of_points: empty"
  | (x, y) :: rest ->
    List.fold_left
      (fun b (px, py) ->
        {
          x0 = min b.x0 px;
          y0 = min b.y0 py;
          x1 = max b.x1 px;
          y1 = max b.y1 py;
        })
      { x0 = x; y0 = y; x1 = x; y1 = y }
      rest

let join a b =
  {
    x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1;
  }

let width b = b.x1 - b.x0 + 1
let height b = b.y1 - b.y0 + 1
let area b = width b * height b

let intersects a b =
  a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

(* Expanding one box by one cell in every direction and testing cell
   intersection is exactly "vertex footprints share a vertex": the vertex
   footprint of box [x0..x1] spans channel columns [x0..x1+1]. *)
let touches_or_intersects a b =
  a.x0 <= b.x1 + 1 && b.x0 <= a.x1 + 1 && a.y0 <= b.y1 + 1 && b.y0 <= a.y1 + 1

let contains outer inner =
  outer.x0 <= inner.x0 && outer.y0 <= inner.y0 && inner.x1 <= outer.x1
  && inner.y1 <= outer.y1

let strictly_nests ~outer ~inner =
  outer.x0 < inner.x0 && outer.y0 < inner.y0 && inner.x1 < outer.x1
  && inner.y1 < outer.y1

let contains_point b (x, y) = b.x0 <= x && x <= b.x1 && b.y0 <= y && y <= b.y1

let pp ppf b =
  Format.fprintf ppf "[(%d,%d)-(%d,%d)]" b.x0 b.y0 b.x1 b.y1
