(** Braiding paths on the channel graph.

    A path is a non-empty sequence of distinct, consecutively-adjacent
    vertex ids. Simultaneous paths must be vertex-disjoint — a vertex is
    "exclusive to one CX operation at one time" (§2). *)

type t

val of_vertices : Grid.t -> int list -> t
(** Validate and build. Raises [Invalid_argument] if empty, if consecutive
    vertices are not grid-adjacent, or if a vertex repeats. *)

val vertices : t -> int list
(** In travel order (source corner first). *)

val length : t -> int
(** Number of vertices. *)

val source : t -> int

val target : t -> int

val mem : t -> int -> bool

val disjoint : t -> t -> bool
(** No shared vertex. *)

val connects_cells : Grid.t -> t -> int -> int -> bool
(** Whether the endpoints are corners of the two given cells (in either
    order). *)

val within_bbox : Grid.t -> Bbox.t -> t -> bool
(** Every vertex lies in the vertex footprint of the box (channel columns
    [x0 .. x1+1], rows [y0 .. y1+1]) — "confined within or on the boundary
    of the bounding box". *)

val pp : Grid.t -> Format.formatter -> t -> unit
