(** Axis-aligned bounding boxes in cell coordinates.

    The LLG analysis and the CX interference graph are defined over
    bounding boxes of CX gates: the minimal box enclosing the two operand
    cells (the paper's {e outer} bounding box, Fig. 19a). Coordinates are
    inclusive cell indices. *)

type t = { x0 : int; y0 : int; x1 : int; y1 : int }
(** Invariant: [x0 <= x1] and [y0 <= y1]. *)

val make : x0:int -> y0:int -> x1:int -> y1:int -> t
(** Raises [Invalid_argument] if the invariant fails. *)

val of_cells : (int * int) -> (int * int) -> t
(** Bounding box of two cells given as [(x, y)] pairs. *)

val of_points : (int * int) list -> t
(** Bounding box of a non-empty point list. *)

val join : t -> t -> t
(** Smallest box enclosing both. *)

val width : t -> int
(** Cells spanned horizontally ([x1 - x0 + 1]). *)

val height : t -> int

val area : t -> int
(** [width * height] — the tie-break key of the stack-based path finder. *)

val intersects : t -> t -> bool
(** Boxes share at least one cell. *)

val touches_or_intersects : t -> t -> bool
(** Boxes share a cell {e or} are edge/corner adjacent — i.e. their vertex
    footprints on the channel graph share a vertex. This is the overlap
    notion under which two simultaneous braiding paths could collide, so it
    defines LLG grouping and interference edges. *)

val contains : t -> t -> bool
(** [contains outer inner]: [inner] lies within [outer] (boundaries may
    coincide). *)

val strictly_nests : outer:t -> inner:t -> bool
(** [inner] lies strictly inside [outer] with no shared boundary cells —
    the premise of Theorem 2. *)

val contains_point : t -> int * int -> bool

val pp : Format.formatter -> t -> unit
