(** Two-dimensional braiding grid (§3.1 "Problem Setting").

    The lattice is partitioned into an [L × L] array of unit {e cells}
    (logical-qubit tiles). Routing happens on the {e channel graph}: a
    vertex at every channel intersection — [(L+1) × (L+1)] of them, the
    corners of the cells — and an edge for every channel segment between
    two adjacent vertices. A braiding path runs from any corner vertex of
    one cell to any corner vertex of another. *)

type t

val create : int -> t
(** [create l] is an [l × l]-cell grid. Raises [Invalid_argument] if
    [l < 1]. *)

val side : t -> int
(** Cells per side. *)

val num_cells : t -> int
(** [side²]. *)

val num_vertices : t -> int
(** [(side+1)²]. *)

val vertex_id : t -> x:int -> y:int -> int
(** Dense id of the vertex at channel coordinates [(x, y)],
    [0 <= x, y <= side]. Raises [Invalid_argument] out of range. *)

val vertex_xy : t -> int -> int * int
(** Inverse of {!vertex_id}. *)

val cell_id : t -> x:int -> y:int -> int
(** Dense id of the cell at [(x, y)], [0 <= x, y < side]. *)

val cell_xy : t -> int -> int * int
(** Inverse of {!cell_id}. *)

val cell_corners : t -> int -> int array
(** The four corner vertex ids of a cell, in (NW, NE, SW, SE) order. *)

val vertex_neighbors : t -> int -> int list
(** Adjacent vertex ids (2 at corners of the grid, 3 on boundary, 4
    inside), ascending. *)

val vertex_distance : t -> int -> int -> int
(** Manhattan distance between two vertices. *)

val cell_distance : t -> int -> int -> int
(** Manhattan distance between two cells (in cell coordinates). *)

val cell_to_cell_vertex_distance : t -> int -> int -> int
(** Minimum Manhattan distance between any corner of the first cell and any
    corner of the second — the length lower bound for a braiding path. *)
