lib/lattice/render.ml: Buffer Grid Int List Path Placement Printf Set
