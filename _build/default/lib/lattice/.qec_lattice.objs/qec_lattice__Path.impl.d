lib/lattice/path.ml: Array Bbox Format Grid Int List Printf Set
