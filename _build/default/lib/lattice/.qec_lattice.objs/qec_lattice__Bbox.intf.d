lib/lattice/bbox.mli: Format
