lib/lattice/grid.mli:
