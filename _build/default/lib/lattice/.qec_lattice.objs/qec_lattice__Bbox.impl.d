lib/lattice/bbox.ml: Format List
