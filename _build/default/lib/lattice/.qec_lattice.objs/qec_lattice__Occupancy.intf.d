lib/lattice/occupancy.mli: Grid Path Qec_util
