lib/lattice/occupancy.ml: Grid List Path Printf Qec_util
