lib/lattice/grid.ml: Array
