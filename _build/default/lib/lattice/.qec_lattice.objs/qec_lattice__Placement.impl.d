lib/lattice/placement.ml: Array Bbox Grid List Qec_util
