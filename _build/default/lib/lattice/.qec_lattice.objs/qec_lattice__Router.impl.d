lib/lattice/router.ml: Array Bbox Grid List Occupancy Path Qec_util
