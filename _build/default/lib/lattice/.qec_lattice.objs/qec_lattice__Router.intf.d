lib/lattice/router.mli: Bbox Grid Occupancy Path
