lib/lattice/placement.mli: Bbox Grid Qec_util
