lib/lattice/path.mli: Bbox Format Grid
