lib/lattice/render.mli: Grid Path Placement
