lib/sim/statevector.mli: Complex Qec_circuit
