lib/sim/statevector.ml: Array Complex Float List Qec_circuit
