module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

type t = { n : int; amps : Complex.t array }

let num_qubits t = t.n

let init n =
  if n < 1 || n > 24 then invalid_arg "Statevector.init: 1 <= n <= 24";
  let amps = Array.make (1 lsl n) Complex.zero in
  amps.(0) <- Complex.one;
  { n; amps }

let of_basis n k =
  if k < 0 || k >= 1 lsl n then invalid_arg "Statevector.of_basis";
  let t = init n in
  t.amps.(0) <- Complex.zero;
  t.amps.(k) <- Complex.one;
  t

let copy t = { n = t.n; amps = Array.copy t.amps }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Statevector: qubit out of range"

(* Apply the 2x2 unitary [[a b][c d]] to qubit q. *)
let apply_1q t q a b c d =
  check_qubit t q;
  let bit = 1 lsl q in
  let size = Array.length t.amps in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let v0 = t.amps.(!i) and v1 = t.amps.(j) in
      t.amps.(!i) <- Complex.add (Complex.mul a v0) (Complex.mul b v1);
      t.amps.(j) <- Complex.add (Complex.mul c v0) (Complex.mul d v1)
    end;
    incr i
  done

(* Apply a phase to every basis state where all [controls] and the
   [target] bit are set... generic controlled-U on the target. *)
let apply_controlled_1q t controls q a b c d =
  check_qubit t q;
  List.iter (check_qubit t) controls;
  let cmask = List.fold_left (fun m cq -> m lor (1 lsl cq)) 0 controls in
  let bit = 1 lsl q in
  let size = Array.length t.amps in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 && !i land cmask = cmask then begin
      let j = !i lor bit in
      let v0 = t.amps.(!i) and v1 = t.amps.(j) in
      t.amps.(!i) <- Complex.add (Complex.mul a v0) (Complex.mul b v1);
      t.amps.(j) <- Complex.add (Complex.mul c v0) (Complex.mul d v1)
    end;
    incr i
  done

let cx t control target =
  apply_controlled_1q t [ control ] target Complex.zero Complex.one
    Complex.one Complex.zero

let re x = { Complex.re = x; im = 0. }
let im x = { Complex.re = 0.; im = x }

let phase theta = { Complex.re = cos theta; im = sin theta }

let inv_sqrt2 = re (1. /. sqrt 2.)

let apply_gate t (g : G.t) =
  match g with
  | G.H q ->
    apply_1q t q inv_sqrt2 inv_sqrt2 inv_sqrt2 (Complex.neg inv_sqrt2)
  | G.X q -> apply_1q t q Complex.zero Complex.one Complex.one Complex.zero
  | G.Y q -> apply_1q t q Complex.zero (im (-1.)) (im 1.) Complex.zero
  | G.Z q -> apply_1q t q Complex.one Complex.zero Complex.zero (re (-1.))
  | G.S q -> apply_1q t q Complex.one Complex.zero Complex.zero (im 1.)
  | G.Sdg q -> apply_1q t q Complex.one Complex.zero Complex.zero (im (-1.))
  | G.T q ->
    apply_1q t q Complex.one Complex.zero Complex.zero (phase (Float.pi /. 4.))
  | G.Tdg q ->
    apply_1q t q Complex.one Complex.zero Complex.zero
      (phase (-.Float.pi /. 4.))
  | G.Rx (q, th) ->
    let c = re (cos (th /. 2.)) and s = im (-.sin (th /. 2.)) in
    apply_1q t q c s s c
  | G.Ry (q, th) ->
    let c = re (cos (th /. 2.)) and s = re (sin (th /. 2.)) in
    apply_1q t q c (Complex.neg s) s c
  | G.Rz (q, th) ->
    apply_1q t q (phase (-.th /. 2.)) Complex.zero Complex.zero (phase (th /. 2.))
  | G.U3 (q, theta, phi, lambda) ->
    (* standard OpenQASM u3 matrix *)
    let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
    apply_1q t q (re ct)
      (Complex.neg (Complex.mul (phase lambda) (re st)))
      (Complex.mul (phase phi) (re st))
      (Complex.mul (phase (phi +. lambda)) (re ct))
  | G.Cx (c, tq) -> cx t c tq
  | G.Cz (c, tq) ->
    apply_controlled_1q t [ c ] tq Complex.one Complex.zero Complex.zero
      (re (-1.))
  | G.Cphase (c, tq, th) ->
    apply_controlled_1q t [ c ] tq Complex.one Complex.zero Complex.zero
      (phase th)
  | G.Swap (a, b) ->
    cx t a b;
    cx t b a;
    cx t a b
  | G.Ccx (c1, c2, tq) ->
    apply_controlled_1q t [ c1; c2 ] tq Complex.zero Complex.one Complex.one
      Complex.zero
  | G.Mcx (cs, tq) ->
    apply_controlled_1q t cs tq Complex.zero Complex.one Complex.one
      Complex.zero
  | G.Measure _ | G.Barrier _ -> ()

let run ?initial circuit =
  let t =
    match initial with
    | Some s ->
      if num_qubits s <> C.num_qubits circuit then
        invalid_arg "Statevector.run: width mismatch";
      copy s
    | None -> init (C.num_qubits circuit)
  in
  C.iter (fun _ g -> apply_gate t g) circuit;
  t

let amplitude t k = t.amps.(k)

let probability t k = Complex.norm2 t.amps.(k)

let probabilities t = Array.map Complex.norm2 t.amps

let norm t = sqrt (Array.fold_left (fun acc a -> acc +. Complex.norm2 a) 0. t.amps)

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: width mismatch";
  let dot = ref Complex.zero in
  Array.iteri
    (fun i va -> dot := Complex.add !dot (Complex.mul (Complex.conj va) b.amps.(i)))
    a.amps;
  Complex.norm2 !dot

let equal_up_to_phase ?(tol = 1e-9) a b = abs_float (fidelity a b -. 1.) <= tol

let most_likely t =
  let best = ref 0 and best_p = ref (probability t 0) in
  Array.iteri
    (fun i _ ->
      let p = probability t i in
      if p > !best_p +. 1e-12 then begin
        best := i;
        best_p := p
      end)
    t.amps;
  !best

(* Relative phase between two equal-direction states (first basis state
   with non-negligible amplitude in both). *)
let circuits_equivalent ?(tol = 1e-9) c1 c2 =
  if C.num_qubits c1 <> C.num_qubits c2 then
    invalid_arg "Statevector.circuits_equivalent: width mismatch";
  let n = C.num_qubits c1 in
  (* Global phase must be common across inputs: compare the full unitaries
     column by column, extracting the phase from the first column and
     dividing it out of subsequent comparisons. *)
  let ref_phase = ref None in
  let ok = ref true in
  for k = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let s1 = run ~initial:(of_basis n k) c1 in
      let s2 = run ~initial:(of_basis n k) c2 in
      if not (equal_up_to_phase ~tol s1 s2) then ok := false
      else begin
        (* per-column relative phase *)
        let col_phase = ref None in
        Array.iteri
          (fun i a1 ->
            if !col_phase = None && Complex.norm a1 > 1e-6 then
              col_phase := Some (Complex.div s2.amps.(i) a1))
          s1.amps;
        match (!ref_phase, !col_phase) with
        | None, Some p -> ref_phase := Some p
        | Some p0, Some p ->
          if Complex.norm (Complex.sub p0 p) > 1e-6 then ok := false
        | _, None -> ok := false
      end
    end
  done;
  !ok
