(** Dense state-vector simulator for small circuits.

    Not part of the scheduling pipeline — the schedulers never need
    amplitudes — but the ground truth for testing it: gate decompositions
    ({!Qec_circuit.Decompose}), the peephole optimizer, the frontends, and
    the benchmark generators are all checked for {e semantic} correctness
    against this simulator on small instances.

    Conventions: qubit [q] is bit [q] of the basis-state index
    (little-endian: state 5 = 0b101 has qubits 0 and 2 set). Practical up
    to ~20 qubits (2{^n} complex amplitudes).

    [Measure] is treated as the identity (the tests use measurement-free
    prefixes or inspect probabilities directly); [Barrier] is a no-op. *)

type t

val num_qubits : t -> int

val init : int -> t
(** [init n] is |0...0⟩ on [n] qubits. Raises [Invalid_argument] if
    [n < 1] or [n > 24]. *)

val of_basis : int -> int -> t
(** [of_basis n k] is the computational basis state |k⟩. Raises
    [Invalid_argument] if [k] is out of range. *)

val copy : t -> t

val apply_gate : t -> Qec_circuit.Gate.t -> unit
(** In-place application. Raises [Invalid_argument] on operand indices out
    of range (gate validation normally prevents this). *)

val run : ?initial:t -> Qec_circuit.Circuit.t -> t
(** Apply every gate of the circuit to [initial] (default |0...0⟩ of the
    circuit's width). The initial state is not mutated. *)

val amplitude : t -> int -> Complex.t

val probability : t -> int -> float
(** |amplitude|². *)

val probabilities : t -> float array

val norm : t -> float
(** Should always be 1 (up to rounding); exposed for sanity tests. *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|² — 1.0 iff equal up to global phase. Raises
    [Invalid_argument] on width mismatch. *)

val equal_up_to_phase : ?tol:float -> t -> t -> bool
(** [fidelity] within [tol] (default 1e-9) of 1. *)

val most_likely : t -> int
(** Basis state with the largest probability (lowest index on ties). *)

val circuits_equivalent :
  ?tol:float -> Qec_circuit.Circuit.t -> Qec_circuit.Circuit.t -> bool
(** Same width and, for every computational basis input, equal output
    states up to a {e common} global phase — i.e. the two circuits
    implement the same unitary up to global phase. Exponential in qubit
    count; intended for ≤ ~8 qubits. Raises [Invalid_argument] on width
    mismatch. *)
