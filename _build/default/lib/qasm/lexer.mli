(** Hand-written lexer for the OpenQASM 2.0 subset. *)

type token =
  | Id of string
  | Number of float
  | Integer of int
  | Str of string
  | Semicolon
  | Comma
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Arrow  (** [->] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Eof

type t = { token : token; line : int; col : int }
(** A token with its source position (1-based). *)

exception Error of { line : int; col : int; msg : string }

val tokenize : string -> t list
(** Whole-input tokenization; comments ([// ...]) and whitespace are
    skipped. The result ends with an [Eof] token. Raises {!Error} on
    unexpected characters or malformed numbers/strings. *)
