(** Emit a circuit as OpenQASM 2.0 text.

    The output declares a single register [q\[n\]] (and [c\[n\]] when the
    circuit measures), so [Frontend.of_string] of the output reproduces the
    circuit gate-for-gate — the round-trip law checked by the property
    tests. *)

val to_string : Qec_circuit.Circuit.t -> string
(** Raises [Invalid_argument] on [Mcx] gates (lower with
    {!Qec_circuit.Decompose.lower_mcx} first); every other gate has a
    direct OpenQASM spelling. *)

val to_channel : out_channel -> Qec_circuit.Circuit.t -> unit

val to_file : string -> Qec_circuit.Circuit.t -> unit
