(** Recursive-descent parser: token stream → {!Ast.program}. *)

exception Error of { line : int; col : int; msg : string }

val parse_tokens : Lexer.t list -> Ast.program
(** Raises {!Error} on syntax errors and on OpenQASM features outside the
    supported subset ([if], [opaque]). *)

val parse_string : string -> Ast.program
(** Lex ({!Lexer.tokenize}) then parse. Lexer errors are re-raised as
    {!Error}. *)
