lib/qasm/lexer.mli:
