lib/qasm/lexer.ml: Buffer List Printf String
