lib/qasm/printer.ml: Buffer Fun List Printf Qec_circuit String
