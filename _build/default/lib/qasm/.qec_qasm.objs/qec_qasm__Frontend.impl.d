lib/qasm/frontend.ml: Ast Filename Float Hashtbl List Parser Printf Qec_circuit
