lib/qasm/ast.ml: Float Format
