lib/qasm/printer.mli: Qec_circuit
