lib/qasm/ast.mli: Format
