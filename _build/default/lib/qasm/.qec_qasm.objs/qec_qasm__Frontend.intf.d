lib/qasm/frontend.mli: Ast Qec_circuit
