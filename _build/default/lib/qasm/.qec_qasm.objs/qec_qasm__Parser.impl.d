lib/qasm/parser.ml: Ast Lexer List Printf
