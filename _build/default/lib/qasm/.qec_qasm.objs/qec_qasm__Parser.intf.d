lib/qasm/parser.mli: Ast Lexer
