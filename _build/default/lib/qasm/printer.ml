module G = Qec_circuit.Gate
module C = Qec_circuit.Circuit

(* %.17g survives a float round-trip exactly. *)
let fl f = Printf.sprintf "%.17g" f

let gate_line buf g =
  let q i = Printf.sprintf "q[%d]" i in
  let line s = Buffer.add_string buf (s ^ ";\n") in
  match (g : G.t) with
  | G.H a -> line ("h " ^ q a)
  | G.X a -> line ("x " ^ q a)
  | G.Y a -> line ("y " ^ q a)
  | G.Z a -> line ("z " ^ q a)
  | G.S a -> line ("s " ^ q a)
  | G.Sdg a -> line ("sdg " ^ q a)
  | G.T a -> line ("t " ^ q a)
  | G.Tdg a -> line ("tdg " ^ q a)
  | G.Rx (a, v) -> line (Printf.sprintf "rx(%s) %s" (fl v) (q a))
  | G.Ry (a, v) -> line (Printf.sprintf "ry(%s) %s" (fl v) (q a))
  | G.Rz (a, v) -> line (Printf.sprintf "rz(%s) %s" (fl v) (q a))
  | G.U3 (a, t, p, l) ->
    line (Printf.sprintf "u3(%s,%s,%s) %s" (fl t) (fl p) (fl l) (q a))
  | G.Cx (a, b) -> line (Printf.sprintf "cx %s,%s" (q a) (q b))
  | G.Cz (a, b) -> line (Printf.sprintf "cz %s,%s" (q a) (q b))
  | G.Cphase (a, b, v) ->
    line (Printf.sprintf "cp(%s) %s,%s" (fl v) (q a) (q b))
  | G.Swap (a, b) -> line (Printf.sprintf "swap %s,%s" (q a) (q b))
  | G.Ccx (a, b, c) -> line (Printf.sprintf "ccx %s,%s,%s" (q a) (q b) (q c))
  | G.Mcx _ ->
    invalid_arg "Qasm.Printer: lower Mcx gates before printing"
  | G.Measure a -> line (Printf.sprintf "measure %s -> c[%d]" (q a) a)
  | G.Barrier qs ->
    line ("barrier " ^ String.concat "," (List.map q qs))

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (C.num_qubits c));
  if C.count_if (function G.Measure _ -> true | _ -> false) c > 0 then
    Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" (C.num_qubits c));
  C.iter (fun _ g -> gate_line buf g) c;
  Buffer.contents buf

let to_channel oc c = output_string oc (to_string c)

let to_file path c =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc c)
