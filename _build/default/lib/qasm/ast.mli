(** Abstract syntax for the supported OpenQASM 2.0 subset. *)

type expr =
  | Num of float
  | Pi
  | Ident of string  (** gate formal parameter *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Pow of expr * expr

type arg =
  | Whole of string  (** a full register, broadcast over its qubits *)
  | Indexed of string * int

type gate_app = { gname : string; gparams : expr list; gargs : arg list }

type stmt =
  | Version of string
  | Include of string
  | Qreg of string * int
  | Creg of string * int
  | Gate_decl of {
      name : string;
      params : string list;
      formals : string list;
      body : gate_app list;
    }
  | App of gate_app
  | Measure of arg * arg
  | Reset of arg
  | Barrier of arg list

type program = stmt list

val eval_expr : (string -> float) -> expr -> float
(** Evaluate with the given binding for formal parameters. Raises
    [Invalid_argument] via the binding function on unknown identifiers. *)

val pp_expr : Format.formatter -> expr -> unit
