type token =
  | Id of string
  | Number of float
  | Integer of int
  | Str of string
  | Semicolon
  | Comma
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Eof

type t = { token : token; line : int; col : int }

exception Error of { line : int; col : int; msg : string }

let is_digit c = c >= '0' && c <= '9'

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let tokens = ref [] in
  let fail msg = raise (Error { line = !line; col = !col; msg }) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () =
    (match peek () with
    | Some '\n' ->
      incr line;
      col := 1
    | Some _ -> incr col
    | None -> ());
    incr pos
  in
  let emit tok ~line ~col = tokens := { token = tok; line; col } :: !tokens in
  let rec skip_line () =
    match peek () with
    | Some '\n' | None -> ()
    | Some _ ->
      advance ();
      skip_line ()
  in
  let lex_number start_line start_col =
    let start = !pos in
    let seen_dot = ref false and seen_exp = ref false in
    let rec go () =
      match peek () with
      | Some c when is_digit c ->
        advance ();
        go ()
      | Some '.' when not !seen_dot ->
        seen_dot := true;
        advance ();
        go ()
      | Some ('e' | 'E') when not !seen_exp ->
        seen_exp := true;
        seen_dot := true (* no dot after exponent *);
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | Some _ | None -> ());
        go ()
      | Some _ | None -> ()
    in
    go ();
    let text = String.sub src start (!pos - start) in
    if !seen_dot || !seen_exp then
      match float_of_string_opt text with
      | Some f -> emit (Number f) ~line:start_line ~col:start_col
      | None -> fail (Printf.sprintf "malformed number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> emit (Integer i) ~line:start_line ~col:start_col
      | None -> fail (Printf.sprintf "malformed integer %S" text)
  in
  let lex_ident start_line start_col =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some c when is_id_char c ->
        advance ();
        go ()
      | Some _ | None -> ()
    in
    go ();
    emit (Id (String.sub src start (!pos - start))) ~line:start_line
      ~col:start_col
  in
  let lex_string start_line start_col =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    emit (Str (Buffer.contents buf)) ~line:start_line ~col:start_col
  in
  let rec loop () =
    match peek () with
    | None -> ()
    | Some c ->
      let l = !line and co = !col in
      (match c with
      | ' ' | '\t' | '\r' | '\n' -> advance ()
      | '/' ->
        advance ();
        (match peek () with
        | Some '/' -> skip_line ()
        | Some _ | None -> emit Slash ~line:l ~col:co)
      | ';' ->
        advance ();
        emit Semicolon ~line:l ~col:co
      | ',' ->
        advance ();
        emit Comma ~line:l ~col:co
      | '(' ->
        advance ();
        emit Lparen ~line:l ~col:co
      | ')' ->
        advance ();
        emit Rparen ~line:l ~col:co
      | '[' ->
        advance ();
        emit Lbracket ~line:l ~col:co
      | ']' ->
        advance ();
        emit Rbracket ~line:l ~col:co
      | '{' ->
        advance ();
        emit Lbrace ~line:l ~col:co
      | '}' ->
        advance ();
        emit Rbrace ~line:l ~col:co
      | '+' ->
        advance ();
        emit Plus ~line:l ~col:co
      | '*' ->
        advance ();
        emit Star ~line:l ~col:co
      | '^' ->
        advance ();
        emit Caret ~line:l ~col:co
      | '-' ->
        advance ();
        (match peek () with
        | Some '>' ->
          advance ();
          emit Arrow ~line:l ~col:co
        | Some _ | None -> emit Minus ~line:l ~col:co)
      | '"' -> lex_string l co
      | c when is_digit c || c = '.' -> lex_number l co
      | c when is_id_start c -> lex_ident l co
      | c -> fail (Printf.sprintf "unexpected character %C" c));
      loop ()
  in
  loop ();
  emit Eof ~line:!line ~col:!col;
  List.rev !tokens
