(** Surface-code latency model.

    "The unit of time is the surface code cycle" (§4.1), one cycle taking
    2.2 µs on the reference superconducting implementation. Logical gate
    latencies scale with the code distance [d]:

    - a single-qubit logical gate (including a T consuming a pre-placed
      magic state) needs [d] cycles of stabilization;
    - a braided CX needs [2 d] cycles (defect dragged out and back), and is
      independent of path length (§2, "latency insensitive");
    - a SWAP is 3 sequential CX, i.e. [3 * 2 d] cycles; a parallel layer of
      SWAPs also costs [3 * 2 d].

    These constants reproduce the paper's magnitudes (e.g. BV-100 critical
    path ≈ 15.2 Kµs at d = 33) and, being uniform across schedulers, cancel
    in every speedup ratio. *)

type t = { d : int; cycle_us : float }

val make : ?cycle_us:float -> d:int -> unit -> t
(** [cycle_us] defaults to 2.2. Raises [Invalid_argument] if [d < 1]. *)

val default_d : int
(** 33 — the fixed distance used for Tables 1 and 2. *)

val single_qubit_cycles : t -> int
(** [d]. *)

val braid_cycles : t -> int
(** [2 d]. *)

val swap_layer_cycles : t -> int
(** [6 d]. *)

val gate_cycles : t -> Qec_circuit.Gate.t -> int
(** Latency of one logical gate: [d] for local gates, [2d] for two-qubit
    gates. Raises [Invalid_argument] on wide gates and barriers (lower
    first). *)

val us_of_cycles : t -> int -> float
(** Cycles to microseconds. *)

val seconds_of_cycles : t -> int -> float
