lib/surface/error_model.ml:
