lib/surface/resources.mli:
