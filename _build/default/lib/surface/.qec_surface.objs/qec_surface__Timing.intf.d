lib/surface/timing.mli: Qec_circuit
