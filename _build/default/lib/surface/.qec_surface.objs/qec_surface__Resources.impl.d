lib/surface/resources.ml: Printf
