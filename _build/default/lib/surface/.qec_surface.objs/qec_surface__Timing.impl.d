lib/surface/timing.ml: Printf Qec_circuit
