lib/surface/error_model.mli:
