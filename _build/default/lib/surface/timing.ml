type t = { d : int; cycle_us : float }

let make ?(cycle_us = 2.2) ~d () =
  if d < 1 then invalid_arg "Timing.make: d < 1";
  if cycle_us <= 0. then invalid_arg "Timing.make: non-positive cycle time";
  { d; cycle_us }

let default_d = 33

let single_qubit_cycles t = t.d
let braid_cycles t = 2 * t.d
let swap_layer_cycles t = 6 * t.d

let gate_cycles t g =
  if Qec_circuit.Gate.is_two_qubit g then braid_cycles t
  else if Qec_circuit.Gate.is_single_qubit g then single_qubit_cycles t
  else
    invalid_arg
      (Printf.sprintf "Timing.gate_cycles: %s must be lowered first"
         (Qec_circuit.Gate.name g))

let us_of_cycles t cycles = float_of_int cycles *. t.cycle_us
let seconds_of_cycles t cycles = us_of_cycles t cycles *. 1e-6
