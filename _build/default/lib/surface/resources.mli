(** Physical-resource accounting for a double-defect surface-code lattice.

    A logical qubit tile must hold two defects plus the surrounding data and
    measurement qubits, sized by the code distance. The constant is chosen
    so that the paper's headline figure — 5,000 logical qubits on
    1,620,000 physical qubits — is reproduced at the matching distance. *)

val lattice_side : num_logical:int -> int
(** Smallest square grid side L = ⌈√N⌉ (§4.1 "Platform"). *)

val physical_qubits_per_tile : d:int -> int
(** Data + measurement qubits inside one unit tile at distance [d]. *)

val total_physical_qubits : num_logical:int -> d:int -> int
(** Tiles of the L×L lattice times per-tile cost. *)

val summary :
  num_logical:int -> d:int -> (string * string) list
(** Human-readable key/value pairs for reports. *)
