type params = { p : float; p_th : float }

let default = { p = 1e-3; p_th = 5.7e-3 }

let check params =
  if params.p <= 0. || params.p_th <= 0. then
    invalid_arg "Error_model: rates must be positive";
  if params.p >= params.p_th then
    invalid_arg "Error_model: physical rate at or above threshold"

let logical_error_rate ?(params = default) ~d () =
  check params;
  if d < 1 then invalid_arg "Error_model.logical_error_rate: d < 1";
  0.03 *. ((params.p /. params.p_th) ** (float_of_int (d + 1) /. 2.))

let distance_for_target ?(params = default) ~target_pl () =
  check params;
  if target_pl <= 0. then
    invalid_arg "Error_model.distance_for_target: non-positive target";
  (* Invert Eq. (1): (d+1)/2 >= log(target/0.03) / log(p/pth). *)
  let ratio = params.p /. params.p_th in
  let needed = log (target_pl /. 0.03) /. log ratio in
  let d = int_of_float (ceil ((2. *. needed) -. 1.)) in
  let d = max 3 d in
  if d mod 2 = 0 then d + 1 else d

let distance_for_volume ?(params = default) ~volume () =
  if volume <= 0. then
    invalid_arg "Error_model.distance_for_volume: non-positive volume";
  distance_for_target ~params ~target_pl:(1. /. volume) ()
