let lattice_side ~num_logical =
  if num_logical <= 0 then invalid_arg "Resources.lattice_side";
  int_of_float (ceil (sqrt (float_of_int num_logical)))

(* A double-defect tile holds ~0.28 (d+1)^2 physical qubits (data +
   measurement). The 0.28 constant is calibrated so that the paper's
   headline configuration — 5,000 logical qubits on a 71x71 lattice with
   1,620,000 physical qubits — is reproduced at d = 33. *)
let physical_qubits_per_tile ~d =
  if d < 1 then invalid_arg "Resources.physical_qubits_per_tile";
  28 * (d + 1) * (d + 1) / 100

let total_physical_qubits ~num_logical ~d =
  let l = lattice_side ~num_logical in
  l * l * physical_qubits_per_tile ~d

let summary ~num_logical ~d =
  let l = lattice_side ~num_logical in
  [
    ("logical qubits", string_of_int num_logical);
    ("lattice", Printf.sprintf "%dx%d tiles" l l);
    ("code distance", string_of_int d);
    ("physical qubits/tile", string_of_int (physical_qubits_per_tile ~d));
    ( "total physical qubits",
      string_of_int (total_physical_qubits ~num_logical ~d) );
  ]
