(** Surface-code logical error model — Eq. (1) of the paper:

    {v P_L = 0.03 * (p / p_th)^((d+1)/2) v}

    with [p] the physical error rate, [p_th] the threshold, and [d] the code
    distance. Defaults follow §2: p = 0.1% (today's best superconducting
    devices) and p_th = 0.57% (Fowler et al.). *)

type params = { p : float; p_th : float }

val default : params
(** [p = 1e-3], [p_th = 5.7e-3]. *)

val logical_error_rate : ?params:params -> d:int -> unit -> float
(** [P_L] for code distance [d]. Raises [Invalid_argument] if [d < 1] or
    the physical rate is at/above threshold. *)

val distance_for_target : ?params:params -> target_pl:float -> unit -> int
(** Smallest odd code distance achieving [P_L <= target_pl]. Raises
    [Invalid_argument] if [target_pl <= 0] or unreachable (p >= p_th). *)

val distance_for_volume : ?params:params -> volume:float -> unit -> int
(** Distance needed so one logical fault is unlikely over a computation of
    [volume] logical-qubit-cycles: targets [P_L <= 1/volume]. This captures
    the paper's "circuit size is inversely proportional to P_L" scaling in
    Figs. 16–17. *)
