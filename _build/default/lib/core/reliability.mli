(** End-to-end reliability of a scheduled circuit.

    Eq. (1) gives the per-logical-qubit, per-code-round failure rate [P_L].
    A schedule determines how many qubit-rounds the computation is exposed
    for: data tiles live for the whole execution, and braiding paths add
    ancilla-channel exposure while they are up. Scheduling faster therefore
    buys reliability — this module quantifies how much, turning the paper's
    latency wins into logical-error-rate wins.

    Exposure is measured in {e blocks} of [d] cycles (the natural unit of
    Eq. (1)): a result with [total_cycles] at distance [d] exposes
    [num_qubits * total_cycles / d] data blocks, plus routing exposure
    estimated from the measured utilization of braid rounds. *)

type exposure = {
  data_blocks : float;  (** data-qubit exposure, in d-cycle blocks *)
  routing_blocks : float;  (** braiding-channel exposure, same unit *)
}

val exposure_of_result :
  Qec_surface.Timing.t -> Scheduler.result -> exposure

val total_blocks : exposure -> float

val failure_probability :
  ?params:Qec_surface.Error_model.params -> d:int -> exposure -> float
(** [1 - (1 - P_L(d))^blocks] — probability at least one logical fault
    occurs during the computation. Raises like
    {!Qec_surface.Error_model.logical_error_rate}. *)

val distance_for_failure :
  ?params:Qec_surface.Error_model.params ->
  target:float ->
  exposure ->
  int
(** Smallest odd distance keeping {!failure_probability} at or below
    [target]. Raises [Invalid_argument] if [target] is not in (0, 1). *)

val compare_schedules :
  ?params:Qec_surface.Error_model.params ->
  d:int ->
  Qec_surface.Timing.t ->
  Scheduler.result ->
  Scheduler.result ->
  float
(** [compare_schedules ~d timing a b]: ratio of failure probabilities
    [P(a) / P(b)] at distance [d] — how many times more likely schedule
    [a] is to fail than schedule [b]. *)
