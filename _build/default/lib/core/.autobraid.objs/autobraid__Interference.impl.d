lib/core/interference.ml: Array Hashtbl Int List Qec_lattice Set Task
