lib/core/compaction.ml: Array List Qec_lattice Task
