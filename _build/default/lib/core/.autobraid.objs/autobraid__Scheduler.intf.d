lib/core/scheduler.mli: Initial_layout Layout_opt Qec_circuit Qec_lattice Qec_surface Trace
