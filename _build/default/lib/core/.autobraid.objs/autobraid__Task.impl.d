lib/core/task.ml: Format Qec_circuit Qec_lattice
