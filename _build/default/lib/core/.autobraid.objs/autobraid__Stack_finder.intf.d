lib/core/stack_finder.mli: Qec_lattice Task
