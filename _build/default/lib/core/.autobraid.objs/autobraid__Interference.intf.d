lib/core/interference.mli: Qec_lattice Task
