lib/core/reliability.ml: Qec_surface Scheduler
