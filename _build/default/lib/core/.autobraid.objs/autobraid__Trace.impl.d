lib/core/trace.ml: Array List Printf Qec_circuit Qec_lattice Qec_surface String Task
