lib/core/stack_finder.ml: Hashtbl Interference List Llg Qec_lattice Task
