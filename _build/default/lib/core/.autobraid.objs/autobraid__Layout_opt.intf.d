lib/core/layout_opt.mli: Qec_lattice Task
