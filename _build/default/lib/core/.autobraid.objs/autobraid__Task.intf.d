lib/core/task.mli: Format Qec_circuit Qec_lattice
