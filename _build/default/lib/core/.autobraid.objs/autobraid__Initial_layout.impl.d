lib/core/initial_layout.ml: Array Hashtbl List Llg Option Qec_circuit Qec_lattice Qec_partition Qec_util Task
