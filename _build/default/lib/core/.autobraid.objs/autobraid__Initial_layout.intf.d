lib/core/initial_layout.mli: Qec_circuit Qec_lattice
