lib/core/llg.mli: Qec_lattice Task
