lib/core/compaction.mli: Qec_lattice Task
