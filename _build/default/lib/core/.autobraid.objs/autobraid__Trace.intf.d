lib/core/trace.mli: Qec_circuit Qec_lattice Qec_surface Task
