lib/core/scheduler.ml: Array Compaction Initial_layout Layout_opt List Qec_circuit Qec_lattice Qec_surface Qec_util Stack_finder Sys Task Trace
