lib/core/llg.ml: Array Hashtbl List Qec_lattice Qec_util Task
