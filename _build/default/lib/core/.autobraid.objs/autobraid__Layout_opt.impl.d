lib/core/layout_opt.ml: Array Hashtbl Interference List Qec_lattice Stack_finder Task
