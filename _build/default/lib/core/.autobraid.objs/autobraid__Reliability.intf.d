lib/core/reliability.mli: Qec_surface Scheduler
