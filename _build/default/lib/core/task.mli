(** A pending two-qubit gate awaiting a braiding path. *)

type t = { id : int; q1 : int; q2 : int }
(** [id] is the gate's index in the circuit (unique within a round); [q1],
    [q2] the operand qubits. *)

val of_gate : int -> Qec_circuit.Gate.t -> t option
(** [Some task] for two-qubit gates, [None] otherwise. *)

val bbox : Qec_lattice.Placement.t -> t -> Qec_lattice.Bbox.t
(** Outer bounding box under the current placement. *)

val cells : Qec_lattice.Placement.t -> t -> int * int
(** The two operand tiles. *)

val distance : Qec_lattice.Placement.t -> t -> int
(** Manhattan distance between the operand tiles. *)

val pp : Format.formatter -> t -> unit
