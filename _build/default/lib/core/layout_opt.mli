(** Dynamic qubit-placement optimization by SWAP insertion — §3.3.2.

    Triggered when the path finder schedules too small a fraction of the
    pending CX gates. A parallel layer of SWAPs (each 3 CX, Fig. 11) is
    planned; every planned swap must be simultaneously routable and the
    swap pairs must be qubit-disjoint.

    Two strategies, as in the paper:

    - {b Greedy}: repeatedly take the CX gate that interferes with most
      others (tie → largest bounding box) and a most-interfering neighbor
      gate, and swap the cross pair of operand qubits that most reduces
      their combined distance; validate the accumulated swap layer with
      the stack-based path finder, dropping the swap if it cannot be
      routed alongside the ones already accepted.
    - {b Odd-even} (Maslov-inspired, for all-to-all patterns): along the
      boustrophedon order of the grid, consider disjoint adjacent cell
      pairs (alternating parity by [phase]) and keep exactly those swaps
      that strictly reduce the total remaining CX distance — a linear-
      depth sorting-network step. *)

type strategy = Greedy | Odd_even

val plan :
  strategy ->
  Qec_lattice.Router.t ->
  Qec_lattice.Placement.t ->
  pending:Task.t list ->
  phase:int ->
  (int * int) list
(** Qubit pairs to swap this layer; pairwise disjoint, simultaneously
    routable, possibly empty. The placement is not modified. [phase]
    alternates the odd-even parity (ignored by [Greedy]). *)

val apply : Qec_lattice.Placement.t -> (int * int) list -> unit
(** Execute the swaps on the placement. *)

val total_distance : Qec_lattice.Placement.t -> Task.t list -> int
(** Sum of operand distances over tasks (the odd-even objective). *)
