(** CX interference graph — §3.3.2.

    One node per pending CX gate; an edge joins two gates whose bounding
    boxes intersect (§3.3.2), i.e. whose braiding paths are likely to
    contend. The stack-based path finder peels maximum-degree nodes off
    this graph. Mutable: nodes can be removed, updating degrees. *)

type t

val build : Qec_lattice.Placement.t -> Task.t list -> t

val original_count : t -> int
(** Nodes at build time (the denominator of the scheduling ratio). *)

val node_count : t -> int
(** Nodes still present. *)

val nodes : t -> Task.t list
(** Remaining tasks, ascending by id. *)

val degree : t -> int -> int
(** Degree of a (present) task id. Raises [Not_found] if absent. *)

val max_degree : t -> int
(** 0 when empty. *)

val max_degree_nodes : t -> Task.t list
(** All present nodes of maximal degree, ascending by id; [] when empty. *)

val neighbors : t -> int -> Task.t list
(** Present neighbors of a task id. *)

val remove : t -> int -> unit
(** Remove a node by task id, decrementing its neighbors' degrees.
    Raises [Not_found] if absent. *)

val mem : t -> int -> bool
