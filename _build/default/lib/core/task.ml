type t = { id : int; q1 : int; q2 : int }

let of_gate id g =
  match Qec_circuit.Gate.two_qubit_operands g with
  | Some (a, b) -> Some { id; q1 = a; q2 = b }
  | None -> None

let bbox placement t = Qec_lattice.Placement.cx_bbox placement t.q1 t.q2

let cells placement t =
  ( Qec_lattice.Placement.cell_of_qubit placement t.q1,
    Qec_lattice.Placement.cell_of_qubit placement t.q2 )

let distance placement t = Qec_lattice.Placement.distance placement t.q1 t.q2

let pp ppf t = Format.fprintf ppf "cx#%d(q%d,q%d)" t.id t.q1 t.q2
