module Timing = Qec_surface.Timing
module Error_model = Qec_surface.Error_model

type exposure = { data_blocks : float; routing_blocks : float }

let exposure_of_result timing (r : Scheduler.result) =
  let d = float_of_int timing.Timing.d in
  let data_blocks = float_of_int r.Scheduler.num_qubits
                    *. float_of_int r.Scheduler.total_cycles /. d in
  (* Routing channels: on average, [avg_utilization] of the lattice's
     channel vertices are alive during each braid round (2d cycles). Treat
     four channel vertices as one logical-qubit-equivalent of exposed
     fabric (a tile has four corners). *)
  let vertices =
    float_of_int ((r.Scheduler.lattice_side + 1) * (r.Scheduler.lattice_side + 1))
  in
  let routing_blocks =
    r.Scheduler.avg_utilization *. vertices /. 4.
    *. float_of_int r.Scheduler.braid_rounds *. 2.
  in
  { data_blocks; routing_blocks }

let total_blocks e = e.data_blocks +. e.routing_blocks

let failure_probability ?params ~d e =
  let pl = Error_model.logical_error_rate ?params ~d () in
  1. -. ((1. -. pl) ** total_blocks e)

let distance_for_failure ?params ~target e =
  if target <= 0. || target >= 1. then
    invalid_arg "Reliability.distance_for_failure: target not in (0,1)";
  let rec grow d =
    if d > 301 then d
    else if failure_probability ?params ~d e <= target then d
    else grow (d + 2)
  in
  grow 3

let compare_schedules ?params ~d timing a b =
  let pa = failure_probability ?params ~d (exposure_of_result timing a) in
  let pb = failure_probability ?params ~d (exposure_of_result timing b) in
  pa /. pb
