(** Braiding-path compaction by rip-up-and-reroute.

    Braiding latency is path-length insensitive, but long paths hog routing
    vertices that later gates (in the same round) need. The paper calls
    topological path deformation orthogonal work (§5, first category); this
    pass implements its simplest useful form: repeatedly rip up the path
    with the most vertices and re-route it through the current residual
    occupancy, keeping the result only if strictly shorter, until a pass
    makes no progress.

    Compaction preserves endpoints and round validity (paths stay pairwise
    vertex-disjoint) and never increases total vertex usage. Enabled in the
    scheduler via [options.compaction]; measured in the ablation bench. *)

val compact :
  ?max_passes:int ->
  Qec_lattice.Router.t ->
  Qec_lattice.Occupancy.t ->
  Qec_lattice.Placement.t ->
  (Task.t * Qec_lattice.Path.t) list ->
  (Task.t * Qec_lattice.Path.t) list
(** [compact router occ placement routed] assumes every path in [routed]
    is currently reserved in [occ] (as {!Stack_finder.find} leaves them)
    and returns the compacted assignment, with [occ] updated to match.
    [max_passes] bounds the outer loop (default 3). Gate order is
    preserved. *)

val total_vertices : (Task.t * Qec_lattice.Path.t) list -> int
(** Sum of path lengths — the quantity compaction minimizes. *)
