module Int_set = Set.Make (Int)

type node = { task : Task.t; mutable adj : Int_set.t }

type t = {
  table : (int, node) Hashtbl.t; (* task id -> node *)
  original : int;
}

let build placement tasks =
  let table = Hashtbl.create (List.length tasks * 2) in
  List.iter
    (fun (task : Task.t) ->
      Hashtbl.replace table task.id { task; adj = Int_set.empty })
    tasks;
  let arr = Array.of_list tasks in
  let boxes = Array.map (fun t -> Task.bbox placement t) arr in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Qec_lattice.Bbox.intersects boxes.(i) boxes.(j) then begin
        let ni = Hashtbl.find table arr.(i).Task.id
        and nj = Hashtbl.find table arr.(j).Task.id in
        ni.adj <- Int_set.add arr.(j).Task.id ni.adj;
        nj.adj <- Int_set.add arr.(i).Task.id nj.adj
      end
    done
  done;
  { table; original = n }

let original_count t = t.original
let node_count t = Hashtbl.length t.table

let nodes t =
  Hashtbl.fold (fun _ n acc -> n.task :: acc) t.table []
  |> List.sort (fun (a : Task.t) b -> compare a.id b.id)

let find t id =
  match Hashtbl.find_opt t.table id with
  | Some n -> n
  | None -> raise Not_found

let degree t id = Int_set.cardinal (find t id).adj

let max_degree t =
  Hashtbl.fold (fun _ n acc -> max acc (Int_set.cardinal n.adj)) t.table 0

let max_degree_nodes t =
  let d = max_degree t in
  Hashtbl.fold
    (fun _ n acc -> if Int_set.cardinal n.adj = d then n.task :: acc else acc)
    t.table []
  |> List.sort (fun (a : Task.t) b -> compare a.id b.id)

let neighbors t id =
  Int_set.elements (find t id).adj |> List.map (fun i -> (find t i).task)

let remove t id =
  let n = find t id in
  Int_set.iter
    (fun other -> (find t other).adj <- Int_set.remove id (find t other).adj)
    n.adj;
  Hashtbl.remove t.table id

let mem t id = Hashtbl.mem t.table id
