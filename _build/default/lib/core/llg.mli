(** Local parallel group (LLG) analysis — §3.3.1.

    An LLG is a minimal set of concurrent CX gates whose joint bounding box
    does not overlap any other LLG's joint bounding box — overlap being
    plain cell intersection ({!Qec_lattice.Bbox.intersects}), the paper's
    definition. Boxes that merely touch along a channel may still contend
    for shared boundary vertices; the router resolves those cases, the
    analysis does not need to.

    Theorem 1: an LLG of size ≤ 3 always schedules fully inside its box.
    Theorem 2: so does an LLG of strictly nested gates of any size. The
    initial-placement fine-tune minimizes the number of groups that satisfy
    neither ("oversize" groups), which Table 1 shows correlates with
    execution time. *)

type group = private {
  members : Task.t list;  (** ascending by task id *)
  bbox : Qec_lattice.Bbox.t;  (** joint bounding box *)
}

val decompose : Qec_lattice.Placement.t -> Task.t list -> group list
(** Partition concurrent tasks into LLGs. Groups are returned in ascending
    order of their smallest member id. The result is a partition: every
    task appears in exactly one group, and distinct groups' joint boxes do
    not intersect. *)

val size : group -> int

val is_strictly_nested : Qec_lattice.Placement.t -> group -> bool
(** Members' boxes form a strict nesting chain (largest strictly contains
    the next, etc.). Trivially true for singleton groups. *)

val is_guaranteed : Qec_lattice.Placement.t -> group -> bool
(** Satisfies Theorem 1 (size ≤ 3) or Theorem 2 (strictly nested). *)

val count_oversize : Qec_lattice.Placement.t -> Task.t list -> int
(** Number of groups with size > 3 — the Table 1 statistic
    ("# of LLG's (size > 3)"). *)
