module Bbox = Qec_lattice.Bbox

type group = { members : Task.t list; bbox : Bbox.t }

(* Merge to fixpoint: start from per-gate boxes, union groups whose joint
   boxes share a vertex footprint, recompute joint boxes, repeat. Each
   iteration reduces the group count, so this terminates. *)
let decompose placement tasks =
  match tasks with
  | [] -> []
  | _ ->
    let arr = Array.of_list tasks in
    let n = Array.length arr in
    let uf = Qec_util.Union_find.create n in
    let boxes = Array.map (fun t -> Task.bbox placement t) arr in
    let changed = ref true in
    while !changed do
      changed := false;
      (* Representative boxes for current groups. *)
      let rep_box = Hashtbl.create 16 in
      for i = 0 to n - 1 do
        let r = Qec_util.Union_find.find uf i in
        let cur =
          match Hashtbl.find_opt rep_box r with
          | Some b -> Bbox.join b boxes.(i)
          | None -> boxes.(i)
        in
        Hashtbl.replace rep_box r cur
      done;
      let reps = Hashtbl.fold (fun r b acc -> (r, b) :: acc) rep_box [] in
      let reps = List.sort compare reps in
      let rec pairwise = function
        | [] -> ()
        | (r1, b1) :: rest ->
          List.iter
            (fun (r2, b2) ->
              if
                (not (Qec_util.Union_find.same uf r1 r2))
                && Bbox.intersects b1 b2
              then begin
                Qec_util.Union_find.union uf r1 r2;
                changed := true
              end)
            rest;
          pairwise rest
      in
      pairwise reps
    done;
    let groups = Qec_util.Union_find.groups uf in
    Array.to_list groups
    |> List.map (fun idxs ->
           let members = List.map (fun i -> arr.(i)) idxs in
           let members =
             List.sort (fun (a : Task.t) b -> compare a.id b.id) members
           in
           let bbox =
             List.fold_left
               (fun acc i -> Bbox.join acc boxes.(i))
               boxes.(List.hd idxs) idxs
           in
           { members; bbox })
    |> List.sort (fun g1 g2 ->
           compare (List.hd g1.members).Task.id (List.hd g2.members).Task.id)

let size g = List.length g.members

let is_strictly_nested placement g =
  let boxes =
    List.map (fun t -> Task.bbox placement t) g.members
    |> List.sort (fun a b -> compare (Bbox.area b) (Bbox.area a))
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
      Bbox.strictly_nests ~outer:a ~inner:b && chain rest
    | [ _ ] | [] -> true
  in
  chain boxes

let is_guaranteed placement g = size g <= 3 || is_strictly_nested placement g

let count_oversize placement tasks =
  decompose placement tasks
  |> List.filter (fun g -> size g > 3)
  |> List.length
