(** Magic-state supply modeling.

    The paper (§4.1) adopts the assumption of Javadi-Abhari et al. that
    "there is a steady supply of magic state qubits at the location of the
    data", making T/T† gates local. This module relaxes that assumption to
    quantify what it hides: distillation factories sit on the lattice
    boundary, produce one magic state every [production_cycles], and each
    T gate must {e fetch} its state over a braiding path from a factory
    tile to the data tile — competing with CX braids for routing vertices.

    The scheduler here extends the AutoBraid round model: a round's CX
    gates are routed by the stack-based path finder first, then ready
    T gates claim banked magic states from their nearest stocked factory
    and route delivery paths through the remaining free vertices. A T gate
    with no stocked factory or no free path waits.

    This is an extension beyond the paper (its related-work §5 points to
    magic-state scheduling as complementary); the bench section "magic"
    reports how far the ideal-supply assumption is from 1–8-factory
    reality. *)

type options = {
  num_factories : int;  (** placed evenly on the boundary ring *)
  production_cycles : int;
      (** cycles per magic state per factory (default [10 * d] — a
          distillation round is an order of magnitude slower than a code
          cycle) *)
  capacity : int;  (** per-factory stock limit (default 2) *)
  base : Autobraid.Scheduler.options;  (** placement/path-finder options *)
}

val default_options : ?d:int -> unit -> options
(** 4 factories, production [10 * d] (d defaults to
    {!Qec_surface.Timing.default_d}), capacity 2, default base options with
    the [Sp] variant. *)

type result = {
  scheduler : Autobraid.Scheduler.result;
  t_gates : int;  (** number of T/T† gates that needed a delivery *)
  deliveries : int;  (** delivery paths routed (= t_gates on success) *)
  stalled_rounds : int;
      (** rounds in which at least one ready T gate could not be served *)
}

val run :
  ?options:options ->
  Qec_surface.Timing.t ->
  Qec_circuit.Circuit.t ->
  result
(** Schedule under explicit magic-state supply. Raises [Invalid_argument]
    if [num_factories < 1], [production_cycles < 1], or [capacity < 1]. *)

val factory_cells : Qec_lattice.Grid.t -> int -> int list
(** The boundary tiles assigned to [k] factories (evenly spaced clockwise
    from the origin corner) — exposed for tests and rendering. *)
