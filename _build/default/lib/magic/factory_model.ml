module Circuit = Qec_circuit.Circuit
module Gate = Qec_circuit.Gate
module Dag = Qec_circuit.Dag
module Decompose = Qec_circuit.Decompose
module Grid = Qec_lattice.Grid
module Occupancy = Qec_lattice.Occupancy
module Router = Qec_lattice.Router
module Placement = Qec_lattice.Placement
module Timing = Qec_surface.Timing
module S = Autobraid.Scheduler
module Task = Autobraid.Task

type options = {
  num_factories : int;
  production_cycles : int;
  capacity : int;
  base : S.options;
}

let default_options ?(d = Timing.default_d) () =
  {
    num_factories = 4;
    production_cycles = 10 * d;
    capacity = 2;
    base = { S.default_options with variant = S.Sp };
  }

type result = {
  scheduler : S.result;
  t_gates : int;
  deliveries : int;
  stalled_rounds : int;
}

(* Boundary ring, clockwise from the origin corner. *)
let boundary_ring grid =
  let l = Grid.side grid in
  if l = 1 then [ Grid.cell_id grid ~x:0 ~y:0 ]
  else begin
    let ring = ref [] in
    for x = 0 to l - 1 do
      ring := Grid.cell_id grid ~x ~y:0 :: !ring
    done;
    for y = 1 to l - 1 do
      ring := Grid.cell_id grid ~x:(l - 1) ~y :: !ring
    done;
    for x = l - 2 downto 0 do
      ring := Grid.cell_id grid ~x ~y:(l - 1) :: !ring
    done;
    for y = l - 2 downto 1 do
      ring := Grid.cell_id grid ~x:0 ~y :: !ring
    done;
    List.rev !ring
  end

let factory_cells grid k =
  if k < 1 then invalid_arg "Factory_model.factory_cells: k < 1";
  let ring = Array.of_list (boundary_ring grid) in
  let m = Array.length ring in
  List.init (min k m) (fun i -> ring.(i * m / min k m))

let is_t_gate = function Gate.T _ | Gate.Tdg _ -> true | _ -> false

let run ?options timing circuit =
  let options =
    match options with Some o -> o | None -> default_options ~d:timing.Timing.d ()
  in
  if options.num_factories < 1 then
    invalid_arg "Factory_model.run: num_factories < 1";
  if options.production_cycles < 1 then
    invalid_arg "Factory_model.run: production_cycles < 1";
  if options.capacity < 1 then invalid_arg "Factory_model.run: capacity < 1";
  let t0 = Sys.time () in
  let circuit = Decompose.to_scheduler_gates circuit in
  let n = Circuit.num_qubits circuit in
  let side = max 1 (Qec_surface.Resources.lattice_side ~num_logical:n) in
  let grid = Grid.create side in
  let placement =
    Autobraid.Initial_layout.place ~seed:options.base.S.seed
      ~method_:options.base.S.initial circuit grid
  in
  let factories = Array.of_list (factory_cells grid options.num_factories) in
  let stock = Array.make (Array.length factories) 1 in
  let progress = Array.make (Array.length factories) 0 in
  let advance_production cycles =
    Array.iteri
      (fun f p ->
        let p = p + cycles in
        let made = p / options.production_cycles in
        progress.(f) <- p mod options.production_cycles;
        stock.(f) <- min options.capacity (stock.(f) + made))
      progress
  in
  let dag = Dag.of_circuit circuit in
  let frontier = Dag.Frontier.create dag in
  let router = Router.create grid in
  let occ = Occupancy.create grid in
  let cycles = ref 0 and rounds = ref 0 and braid_rounds = ref 0 in
  let util_sum = ref 0. and util_peak = ref 0. in
  let deliveries = ref 0 and stalled_rounds = ref 0 in
  let t_gates = ref (Circuit.count_if is_t_gate circuit) in
  while not (Dag.Frontier.is_done frontier) do
    let ready = Dag.Frontier.ready frontier in
    let plain_singles, t_ready, cx_tasks =
      List.fold_left
        (fun (singles, ts, cxs) id ->
          let g = Circuit.gate circuit id in
          match Task.of_gate id g with
          | Some t -> (singles, ts, t :: cxs)
          | None ->
            if is_t_gate g then (singles, id :: ts, cxs)
            else (id :: singles, ts, cxs))
        ([], [], []) ready
    in
    let plain_singles = List.rev plain_singles in
    let t_ready = List.rev t_ready in
    let cx_tasks = List.rev cx_tasks in
    Occupancy.clear occ;
    (* 1. CX braids via the stack-based finder. *)
    let outcome = Autobraid.Stack_finder.find router occ placement cx_tasks in
    (* 2. T-gate deliveries on the remaining free vertices. *)
    let served = ref [] in
    let stalled = ref false in
    List.iter
      (fun id ->
        let g = Circuit.gate circuit id in
        let q = match Gate.qubits g with [ q ] -> q | _ -> assert false in
        let target = Placement.cell_of_qubit placement q in
        let candidates =
          Array.to_list (Array.mapi (fun f cell -> (f, cell)) factories)
          |> List.filter (fun (f, _) -> stock.(f) > 0)
          |> List.sort (fun (_, c1) (_, c2) ->
                 compare
                   (Grid.cell_distance grid c1 target)
                   (Grid.cell_distance grid c2 target))
        in
        let rec try_factories = function
          | [] -> stalled := true
          | (f, cell) :: rest ->
            if cell = target then begin
              (* the data tile hosts the factory: local consumption *)
              stock.(f) <- stock.(f) - 1;
              served := id :: !served
            end
            else begin
              match
                Router.route_and_reserve router occ ~src_cell:cell
                  ~dst_cell:target
              with
              | Some _ ->
                stock.(f) <- stock.(f) - 1;
                incr deliveries;
                served := id :: !served
              | None -> try_factories rest
            end
        in
        try_factories candidates)
      t_ready;
    let served = List.rev !served in
    if !stalled then incr stalled_rounds;
    (* 3. Commit the round. *)
    let braided = outcome.Autobraid.Stack_finder.routed <> [] in
    let delivered = served <> [] in
    List.iter
      (fun ((t : Task.t), _) -> Dag.Frontier.complete frontier t.id)
      outcome.Autobraid.Stack_finder.routed;
    List.iter (Dag.Frontier.complete frontier) served;
    List.iter (Dag.Frontier.complete frontier) plain_singles;
    let round_cycles =
      if braided || delivered then Timing.braid_cycles timing
      else Timing.single_qubit_cycles timing
    in
    if braided || delivered then begin
      let u = Occupancy.utilization occ in
      util_sum := !util_sum +. u;
      if u > !util_peak then util_peak := u;
      incr braid_rounds
    end;
    cycles := !cycles + round_cycles;
    incr rounds;
    advance_production round_cycles
  done;
  let scheduler =
    {
      S.name = Circuit.name circuit;
      num_qubits = n;
      num_gates = Circuit.length circuit;
      num_two_qubit = Circuit.two_qubit_count circuit;
      lattice_side = side;
      total_cycles = !cycles;
      rounds = !rounds;
      braid_rounds = !braid_rounds;
      swap_layers = 0;
      swaps_inserted = 0;
      critical_path_cycles =
        Dag.critical_path ~cost:(Timing.gate_cycles timing) dag;
      avg_utilization =
        (if !braid_rounds = 0 then 0.
         else !util_sum /. float_of_int !braid_rounds);
      peak_utilization = !util_peak;
      compile_time_s = Sys.time () -. t0;
    }
  in
  {
    scheduler;
    t_gates = !t_gates;
    deliveries = !deliveries;
    stalled_rounds = !stalled_rounds;
  }
