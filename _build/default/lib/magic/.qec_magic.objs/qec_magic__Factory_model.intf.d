lib/magic/factory_model.mli: Autobraid Qec_circuit Qec_lattice Qec_surface
