lib/magic/factory_model.ml: Array Autobraid List Qec_circuit Qec_lattice Qec_surface Sys
