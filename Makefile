# Convenience targets; `make check` is the one-stop pre-commit gate.

.PHONY: all build test bench bench-smoke bench-check bench-scale scale-smoke batch-smoke fuzz-smoke profile-smoke verify-smoke lookahead-smoke serve-smoke fmt lint check clean

CLI := _build/default/bin/autobraid_cli.exe

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available — the repo must
# stay buildable in environments without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping format check"; \
	fi

# The repository's own inputs must stay diagnostic-free, warnings included.
# The loop calls the built binary directly: `build` already produced it, and
# one `dune exec` per input pays a dune lock + rebuild check each time.
lint: build
	@for f in fixtures/*.qasm; do \
		echo "lint $$f"; \
		$(CLI) lint "$$f" --deny warning || exit 1; \
	done
	@for c in qft9 bv12 qaoa12 im12 ghz8 adder8; do \
		echo "lint $$c"; \
		$(CLI) lint "$$c" --deny warning || exit 1; \
	done

# Cross-backend smoke: both communication backends must still run end to
# end and emit the machine-readable snapshot with sane keys.
bench-smoke: build
	@out=$$(mktemp); \
	./_build/default/bench/main.exe backends --json "$$out" >/dev/null || exit 1; \
	grep -q '"section": "backends"' "$$out" || { echo "bench-smoke: missing section key"; exit 1; }; \
	grep -q '"braid"' "$$out" || { echo "bench-smoke: missing braid outcome"; exit 1; }; \
	grep -q '"surgery"' "$$out" || { echo "bench-smoke: missing surgery outcome"; exit 1; }; \
	grep -q '"merge_rounds"' "$$out" || { echo "bench-smoke: missing surgery stats"; exit 1; }; \
	rm -f "$$out"; \
	echo "bench-smoke: OK"

# Batch-engine smoke: the fixtures manifest must compile on a 2-worker
# pool, a second pass over the same --cache-dir must replay placements
# from disk, and both passes must emit byte-identical JSONL.
batch-smoke: build
	@dir=$$(mktemp -d); \
	$(CLI) batch fixtures/batch_manifest.json --jobs 2 \
		--cache-dir "$$dir/cache" -o "$$dir/cold.jsonl" \
		2> "$$dir/cold.log" || { cat "$$dir/cold.log"; exit 1; }; \
	$(CLI) batch fixtures/batch_manifest.json --jobs 2 \
		--cache-dir "$$dir/cache" -o "$$dir/warm.jsonl" \
		2> "$$dir/warm.log" || { cat "$$dir/warm.log"; exit 1; }; \
	cmp "$$dir/cold.jsonl" "$$dir/warm.jsonl" \
		|| { echo "batch-smoke: warm-cache JSONL differs"; exit 1; }; \
	ls "$$dir/cache"/*.placement >/dev/null 2>&1 \
		|| { echo "batch-smoke: no placements persisted"; exit 1; }; \
	grep -q ' 0 misses' "$$dir/warm.log" \
		|| { echo "batch-smoke: warm pass recomputed placements"; \
		     cat "$$dir/warm.log"; exit 1; }; \
	grep -q '"status":"error"' "$$dir/cold.jsonl" \
		&& { echo "batch-smoke: fixtures manifest has failing jobs"; exit 1; }; \
	rm -rf "$$dir"; \
	echo "batch-smoke: OK"

# Property-fuzz smoke: a fixed-seed sweep of the whole registry (trace
# replay, differential backends, engine identities, crash fuzzing).
# Deterministic — a failure here is a stable (seed, case) address; see
# docs/testing.md for the reproduction workflow. Override the case count
# with FUZZ_COUNT (e.g. FUZZ_COUNT=2000 for a deeper local soak).
FUZZ_COUNT ?= 200

fuzz-smoke: build
	$(CLI) fuzz --seed 42 --count $(FUZZ_COUNT)

# Drift gate: re-measure the committed BENCH snapshots and fail on
# regressions. Only the deterministic cycle-count sections are gated at
# tight tolerance (BENCH_engine/BENCH_prop carry wall times that vary
# across hosts). BENCH_serve is all wall numbers, so it gets its own very
# loose band — it exists to catch catastrophic serving regressions (an
# accidentally serialized pool, a cache that stopped hitting), not 20%
# noise.
bench-check: build
	./_build/default/bench/main.exe --check BENCH_backends.json \
		--check BENCH_verify.json --tolerance 0.02
	./_build/default/bench/main.exe --check BENCH_serve.json \
		--wall-tolerance 9.0

# Paper-scale drift gate: re-measures the full Table-2 sweep (QFT-100..400,
# adder, RevLib) against the committed BENCH_scale.json — minutes of wall
# time, so it is NOT part of `make check`. Cycle counts and the
# braid_vs_greedy_speedup ratios gate at 2%; the qftN_wall_s keys gate at
# the loose wall band.
bench-scale: build
	./_build/default/bench/main.exe --check BENCH_scale.json --tolerance 0.02

# CI-speed stand-in for bench-scale: the QFT-100 point only, exact-checked
# against the committed sweep inside a wall budget
# (AUTOBRAID_SCALE_BUDGET_S, default 120 s).
scale-smoke: build
	./_build/default/bench/main.exe scale-smoke

# Profiler smoke: the repeated-run report and its Perfetto trace must come
# out structurally sound.
profile-smoke: build
	@out=$$(mktemp); trace=$$(mktemp); \
	$(CLI) profile qft9 --repeat 2 --json --trace-out "$$trace" > "$$out" \
		|| { cat "$$out"; exit 1; }; \
	grep -q '"schema": "autobraid-profile/v1"' "$$out" \
		|| { echo "profile-smoke: missing schema tag"; exit 1; }; \
	grep -q '"phases"' "$$out" \
		|| { echo "profile-smoke: missing phases"; exit 1; }; \
	grep -q '"traceEvents"' "$$trace" \
		|| { echo "profile-smoke: missing traceEvents"; exit 1; }; \
	if command -v jq >/dev/null 2>&1; then \
		jq empty "$$out" || { echo "profile-smoke: report is not JSON"; exit 1; }; \
		jq empty "$$trace" || { echo "profile-smoke: trace is not JSON"; exit 1; }; \
	fi; \
	rm -f "$$out" "$$trace"; \
	echo "profile-smoke: OK"

# Certification smoke: every committed fixture and a mid-size benchmark
# must certify clean through both communication backends, and the exit
# policy must match lint's (0 clean / 1 failed invariant / 2 bad input).
verify-smoke: build
	@for f in fixtures/*.qasm; do \
		echo "verify $$f"; \
		$(CLI) verify "$$f" || exit 1; \
	done
	@for c in qft9 bv12 qaoa12; do \
		echo "verify $$c (braid + surgery)"; \
		$(CLI) verify "$$c" || exit 1; \
		$(CLI) verify "$$c" --backend surgery || exit 1; \
	done
	@echo "verify fixtures/batch_manifest.json"; \
	$(CLI) verify fixtures/batch_manifest.json || exit 1
	@$(CLI) verify no-such-circuit >/dev/null 2>&1; \
	[ $$? -eq 2 ] || { echo "verify-smoke: bad input should exit 2"; exit 1; }
	@$(CLI) verify qft9 --json | grep -q '"schema": "autobraid-cert/v1"' \
		|| { echo "verify-smoke: missing certificate schema tag"; exit 1; }
	@echo "verify-smoke: OK"

# Lookahead smoke: the portfolio scheduler must beat plain braiding on
# the long-range family (the committed BENCH_backends.json win) and must
# never be worse anywhere. The returned schedule is the "total cycles"
# table row; the greedy run it raced is the greedy_cycles stat.
lookahead-smoke: build
	@for c in lr16 lr24; do \
		out=$$($(CLI) schedule $$c --backend lookahead) || exit 1; \
		total=$$(echo "$$out" | awk -F'|' '/total cycles/ {gsub(/ /,"",$$3); print $$3}'); \
		greedy=$$(echo "$$out" | awk '/greedy_cycles/ {print $$2}'); \
		[ -n "$$total" ] && [ -n "$$greedy" ] \
			|| { echo "lookahead-smoke: $$c missing cycle stats"; exit 1; }; \
		[ "$$total" -le "$$greedy" ] \
			|| { echo "lookahead-smoke: $$c lookahead $$total > braid $$greedy"; exit 1; }; \
	done
	@out=$$($(CLI) schedule lr24 --backend lookahead); \
	total=$$(echo "$$out" | awk -F'|' '/total cycles/ {gsub(/ /,"",$$3); print $$3}'); \
	greedy=$$(echo "$$out" | awk '/greedy_cycles/ {print $$2}'); \
	[ "$$total" -lt "$$greedy" ] \
		|| { echo "lookahead-smoke: expected a strict win on lr24 ($$total vs $$greedy)"; exit 1; }
	@$(CLI) schedule lr24 --backend compare | grep -q lookahead \
		|| { echo "lookahead-smoke: compare does not include lookahead"; exit 1; }
	@echo "lookahead-smoke: OK"

# Serve smoke: boot the daemon, hit it with two concurrent clients whose
# responses must be byte-identical to a local batch run, check the stats
# endpoint saw the shared cache, exercise admission control on a
# zero-capacity daemon, and drain both cleanly.
serve-smoke: build
	@dir=$$(mktemp -d); sock="$$dir/serve.sock"; \
	$(CLI) serve --socket "$$sock" --jobs 2 --cache-dir "$$dir/cache" \
		2> "$$dir/daemon.log" & pid=$$!; \
	for i in $$(seq 1 100); do [ -S "$$sock" ] && break; sleep 0.1; done; \
	[ -S "$$sock" ] || { echo "serve-smoke: daemon never bound its socket"; \
		cat "$$dir/daemon.log"; exit 1; }; \
	$(CLI) serve --connect "$$sock" --ping | grep -q '"pong"' \
		|| { echo "serve-smoke: ping failed"; exit 1; }; \
	$(CLI) serve --connect "$$sock" --manifest fixtures/batch_manifest.json \
		> "$$dir/a.jsonl" 2> /dev/null & c1=$$!; \
	$(CLI) serve --connect "$$sock" --manifest fixtures/batch_manifest.json \
		> "$$dir/b.jsonl" 2> /dev/null & c2=$$!; \
	wait $$c1 && wait $$c2 \
		|| { echo "serve-smoke: concurrent clients failed"; \
		     cat "$$dir/daemon.log"; exit 1; }; \
	$(CLI) batch fixtures/batch_manifest.json --jobs 2 \
		-o "$$dir/local.jsonl" 2> /dev/null || exit 1; \
	cmp "$$dir/a.jsonl" "$$dir/local.jsonl" \
		|| { echo "serve-smoke: client A diverged from one-shot batch"; exit 1; }; \
	cmp "$$dir/b.jsonl" "$$dir/local.jsonl" \
		|| { echo "serve-smoke: client B diverged from one-shot batch"; exit 1; }; \
	$(CLI) serve --connect "$$sock" --stats > "$$dir/stats.json" || exit 1; \
	grep -q '"memory_hits"' "$$dir/stats.json" \
		|| { echo "serve-smoke: stats missing cache counters"; exit 1; }; \
	grep -q '"serve.request_s"' "$$dir/stats.json" \
		|| { echo "serve-smoke: stats missing latency histogram"; exit 1; }; \
	$(CLI) serve --connect "$$sock" --shutdown > /dev/null || exit 1; \
	wait $$pid || { echo "serve-smoke: daemon exited nonzero"; \
		cat "$$dir/daemon.log"; exit 1; }; \
	[ ! -e "$$sock" ] || { echo "serve-smoke: socket not removed on drain"; exit 1; }; \
	sock2="$$dir/tiny.sock"; \
	$(CLI) serve --socket "$$sock2" --jobs 1 --max-pending 0 \
		2>> "$$dir/daemon.log" & pid2=$$!; \
	for i in $$(seq 1 100); do [ -S "$$sock2" ] && break; sleep 0.1; done; \
	$(CLI) serve --connect "$$sock2" qft9 2>&1 | grep -q overloaded \
		|| { echo "serve-smoke: zero-capacity daemon should reject with overloaded"; exit 1; }; \
	$(CLI) serve --connect "$$sock2" --ping | grep -q '"pong"' \
		|| { echo "serve-smoke: daemon unresponsive after overload"; exit 1; }; \
	$(CLI) serve --connect "$$sock2" --shutdown > /dev/null || exit 1; \
	wait $$pid2 || { echo "serve-smoke: overloaded daemon exited nonzero"; exit 1; }; \
	rm -rf "$$dir"; \
	echo "serve-smoke: OK"

check: fmt build test lint bench-smoke bench-check scale-smoke batch-smoke fuzz-smoke profile-smoke verify-smoke lookahead-smoke serve-smoke
	@echo "check: OK"

clean:
	dune clean
