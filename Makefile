# Convenience targets; `make check` is the one-stop pre-commit gate.

.PHONY: all build test bench fmt lint check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available — the repo must
# stay buildable in environments without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping format check"; \
	fi

# The repository's own inputs must stay diagnostic-free, warnings included.
lint: build
	@for f in fixtures/*.qasm; do \
		echo "lint $$f"; \
		dune exec bin/autobraid_cli.exe -- lint "$$f" --deny warning || exit 1; \
	done
	@for c in qft9 bv12 qaoa12 im12 ghz8 adder8; do \
		echo "lint $$c"; \
		dune exec bin/autobraid_cli.exe -- lint "$$c" --deny warning || exit 1; \
	done

check: fmt build test lint
	@echo "check: OK"

clean:
	dune clean
