# Convenience targets; `make check` is the one-stop pre-commit gate.

.PHONY: all build test bench fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available — the repo must
# stay buildable in environments without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping format check"; \
	fi

check: fmt build test
	@echo "check: OK"

clean:
	dune clean
